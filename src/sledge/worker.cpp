#include "sledge/worker.hpp"

#include <errno.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/syscall.h>
#include <sys/uio.h>
#include <time.h>
#include <unistd.h>

#include <cstring>

#include <algorithm>
#include <mutex>

#include "common/clock.hpp"
#include "common/log.hpp"
#include "engine/host.hpp"
#include "engine/trap.hpp"
#include "http/http.hpp"
#include "sledge/runtime.hpp"

namespace sledge::runtime {

namespace {
thread_local Worker* tls_worker = nullptr;

// True while a scheduler→sandbox context switch is in flight on this
// thread: from just before the scheduler's swapcontext until the sandbox
// side's first landing point (entry start, quantum-handler resume, or
// block_yield resume) calls worker_switch_landed(). swapcontext is not
// atomic — it installs the target's signal mask (unblocking SIGALRM) and
// restores %rsp several instructions before the argument registers — so a
// quantum signal landing mid-switch sees current_/kRunning but must not
// save a context: it would clobber the very ucontext the interrupted
// swapcontext is still loading from.
thread_local std::atomic<bool> t_switch_in_flight{false};
}

void worker_switch_landed() {
  t_switch_in_flight.store(false, std::memory_order_relaxed);
}

// Quantum expiry: save the running sandbox's context (the paper's
// mcontext_t save) and switch to the scheduler context. Runs on the
// sandbox's stack; the sandbox resumes by returning from this handler.
//
// Deadline enforcement lives here too: an over-budget sandbox is not
// rotated but unwound via the engine's trap machinery (raise_trap longjmps
// to the TrapScope inside the sandbox's invoke), so Sandbox::entry observes
// a kDeadlineExceeded outcome and parks the sandbox in kKilled.
void worker_quantum_handler(int) {
  Worker* w = tls_worker;
  if (!w) return;
  Sandbox* sb = w->current_;
  if (!sb || sb->state() != SandboxState::kRunning) return;
  // Mid-switch: preempting now would save into (and clobber) the ucontext
  // the interrupted swapcontext is still loading from. Defer by one minimal
  // slice; the retry lands inside sandbox code (under saturation this
  // window was hit reliably — a pending SIGALRM is delivered the instant
  // the switch unblocks it).
  if (t_switch_in_flight.load(std::memory_order_relaxed)) {
    w->rearm_timer_min();
    return;
  }
  // Off-stack delivery (the trap handler's sigaltstack during a guard
  // fault): same deferral — saving a context that points into the altstack
  // would resume a dead frame. The handler runs on the interrupted stack,
  // so a local's address identifies where the signal landed.
  char probe;
  if (!sb->on_own_stack(&probe)) {
    w->rearm_timer_min();
    return;
  }
  if ((sb->kill_requested() || sb->deadline_exceeded(now_ns())) &&
      engine::in_trap_scope()) {
    sb->request_kill();
    engine::raise_trap(engine::TrapCode::kDeadlineExceeded);  // no return
  }
  sb->set_state(SandboxState::kRunnable);
  sb->note_preempted();
  w->stats_.preemptions.fetch_add(1, std::memory_order_relaxed);
  ::swapcontext(sb->context(), &w->sched_ctx_);
  // Resumed: the re-dispatch switch is complete once control is back here.
  worker_switch_landed();
  // Returning re-enters the interrupted sandbox code — unless a kill
  // arrived while we were descheduled (wall deadline passing).
  if (sb->kill_requested() && engine::in_trap_scope()) {
    engine::raise_trap(engine::TrapCode::kDeadlineExceeded);
  }
}

namespace {

void install_quantum_handler_once() {
  static std::once_flag once;
  std::call_once(once, [] {
    struct sigaction sa;
    sa.sa_handler = worker_quantum_handler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = SA_RESTART;
    sigaction(SIGALRM, &sa, nullptr);
  });
}

}  // namespace

Worker::Worker(Runtime* rt, int index)
    : rt_(rt),
      index_(index),
      policy_(SchedulerPolicy::make(rt->config().sched)) {}

Worker::~Worker() { join(); }

void Worker::start() {
  thread_ = std::thread([this] { thread_main(); });
}

void Worker::join() {
  if (thread_.joinable()) thread_.join();
}

void Worker::setup_timer() {
  struct sigevent sev;
  std::memset(&sev, 0, sizeof(sev));
  sev.sigev_notify = SIGEV_THREAD_ID;
  sev.sigev_signo = SIGALRM;
  sev._sigev_un._tid = static_cast<pid_t>(::syscall(SYS_gettid));
  if (::timer_create(CLOCK_MONOTONIC, &sev, &timer_) == 0) {
    timer_valid_ = true;
  } else {
    SLEDGE_LOG_WARN("worker %d: timer_create failed; preemption disabled",
                    index_);
  }
}

void Worker::arm_timer(const Sandbox* sb) {
  if (!timer_valid_) return;
  uint64_t ns = rt_->config().quantum_us * 1000;
  // Clip the slice to the remaining budget/deadline (floor keeps the value
  // nonzero: a zero it_value would disarm the timer instead).
  constexpr uint64_t kMinSliceNs = 100'000;
  uint64_t now = now_ns();
  if (sb->budget_ns() != 0) {
    uint64_t used = sb->cpu_consumed_ns(now);
    uint64_t left = sb->budget_ns() > used ? sb->budget_ns() - used : 0;
    ns = std::min(ns, std::max(left, kMinSliceNs));
  }
  if (sb->deadline_at_ns() != 0) {
    uint64_t left =
        sb->deadline_at_ns() > now ? sb->deadline_at_ns() - now : 0;
    ns = std::min(ns, std::max(left, kMinSliceNs));
  }
  itimerspec its{};
  its.it_value.tv_sec = ns / 1'000'000'000;
  its.it_value.tv_nsec = ns % 1'000'000'000;
  ::timer_settime(timer_, 0, &its, nullptr);
}

void Worker::disarm_timer() {
  if (!timer_valid_) return;
  itimerspec its{};  // zero = disarm
  ::timer_settime(timer_, 0, &its, nullptr);
}

void Worker::rearm_timer_min() {
  // Called from the quantum signal handler (timer_settime is
  // async-signal-safe): retry the preemption after a minimal slice.
  if (!timer_valid_) return;
  itimerspec its{};
  its.it_value.tv_nsec = 100'000;  // 100 us
  ::timer_settime(timer_, 0, &its, nullptr);
}

void Worker::thread_main() {
  tls_worker = this;
  engine::ensure_sigaltstack();

  // The event loop is the worker's heartbeat; without it the worker cannot
  // sleep or park blocked sandboxes, so failure is fatal for this core.
  Status io_st = io_loop_.init();
  if (!io_st.is_ok()) {
    SLEDGE_LOG_ERROR("worker %d: %s", index_, io_st.message().c_str());
    return;
  }

  // The scheduler runs with SIGALRM blocked; only sandbox contexts (whose
  // uc_sigmask unblocks it) can take the quantum signal.
  sigset_t mask;
  sigemptyset(&mask);
  sigaddset(&mask, SIGALRM);
  pthread_sigmask(SIG_BLOCK, &mask, nullptr);

  // FIFO run-to-completion never arms the quantum timer: a dispatched
  // sandbox keeps the core until it completes, blocks, or traps.
  const bool preempt =
      rt_->config().preemption && policy_->allows_preemption();
  if (preempt) {
    install_quantum_handler_once();
    setup_timer();
  }

  // Idle sleeps are capped so running()/draining() flips are noticed even
  // if a notify were lost; all expected wake sources (listener push, child
  // completion, stop) also ping the eventfd, so the cap is a backstop, not
  // the latency floor.
  constexpr uint64_t kIdleSleepCapNs = 20'000'000;  // 20 ms

  std::vector<Sandbox*> woken;
  int dry_rounds = 0;
  while (rt_->running()) {
    woken.clear();
    bool writes_ready = false;
    io_loop_.poll(0, &woken, &writes_ready);
    admit_woken(&woken);
    pump_writes();
    // Published for the invoke-locality slack check (racy by design: a
    // stale value only mis-places one child, which any worker can steal).
    backlog_hint_.store(static_cast<uint32_t>(policy_->size()),
                        std::memory_order_relaxed);

    Sandbox* sb = next_sandbox();
    if (sb) {
      dry_rounds = 0;
      dispatch(sb);
      continue;
    }

    // Draining and dry (a few re-checks absorb racy failed steals): this
    // worker's part of the graceful stop is done.
    if (rt_->draining() && io_loop_.empty() && writes_.empty() &&
        rt_->dispatcher().backlog_estimate() == 0) {
      if (++dry_rounds > 16) break;
      continue;
    }
    dry_rounds = 0;

    // Nothing runnable: sleep in epoll until the nearest timer/deadline, a
    // watched fd turns ready, or a cross-thread notify — no busy-spinning
    // (this is where new-request dequeueing integrates with scheduling,
    // paper §3.4, now without burning the core while waiting).
    flush_access_log();  // off the hot path: only when the core is idle
    uint64_t budget = io_loop_.sleep_budget_ns(now_ns(), kIdleSleepCapNs);
    woken.clear();
    writes_ready = false;
    io_loop_.poll(budget, &woken, &writes_ready);
    admit_woken(&woken);
    if (writes_ready) pump_writes();
  }

  // Anything left after the drain grace period is abandoned: connections
  // die with the process lifetime.
  Sandbox* sb = nullptr;
  while (rt_->dispatcher().fetch(index_, &sb)) abandon(sb);
  while (Sandbox* s = policy_->pick_next()) abandon(s);
  std::vector<Sandbox*> blocked;
  io_loop_.drain_all(&blocked);
  for (Sandbox* s : blocked) abandon(s);
  for (WriteJob& w : writes_) {
    rt_->forget_connection(w.fd, w.shard, w.gen);
    ::close(w.fd);
    rt_->note_write_done();
  }
  writes_.clear();
  flush_access_log();

  backlog_hint_.store(0, std::memory_order_relaxed);
  if (timer_valid_) ::timer_delete(timer_);
  tls_worker = nullptr;
}

Sandbox* Worker::next_sandbox() {
  // Dequeueing of new requests is integrated into the scheduling loop
  // (paper §3.4). Round-robin admits at most one stolen request per
  // iteration so freshly arrived short functions rotate fairly with
  // long-running preempted ones; EDF drains everything available so the
  // deadline comparison sees the full candidate set.
  Sandbox* stolen = nullptr;
  while (rt_->dispatcher().fetch(index_, &stolen)) {
    stats_.steals.fetch_add(1, std::memory_order_relaxed);
    policy_->enqueue(stolen);
    if (!policy_->admit_eagerly()) break;
  }
  return policy_->pick_next();
}

void Worker::dispatch(Sandbox* sb) {
  // Wall-clock deadlines also cover queueing delay: check before burning a
  // slice. A sandbox that never entered the engine has nothing to unwind
  // and is killed in place; one that already ran must unwind on-stack, so
  // flag it and dispatch — the resume paths raise the trap.
  if (!sb->kill_requested() && sb->deadline_exceeded(now_ns())) {
    sb->request_kill();
  }
  if (sb->kill_requested() && sb->first_run_ns() == 0) {
    sb->mark_killed_undispatched();
    finalize(sb);
    return;
  }

  stats_.dispatches.fetch_add(1, std::memory_order_relaxed);
  sb->set_owner_worker(index_);  // children spawned via sb_invoke ping us
  const bool preempt =
      rt_->config().preemption && policy_->allows_preemption();
  current_ = sb;
  if (preempt) arm_timer(sb);
  // Gate the quantum handler across the non-atomic swapcontext below; the
  // sandbox-side landing point clears it (see t_switch_in_flight).
  t_switch_in_flight.store(true, std::memory_order_relaxed);
  sb->dispatch(&sched_ctx_);
  t_switch_in_flight.store(false, std::memory_order_relaxed);
  if (preempt) disarm_timer();
  current_ = nullptr;

  switch (sb->state()) {
    case SandboxState::kRunnable:  // preempted: back to the policy queue
      policy_->enqueue(sb);
      break;
    case SandboxState::kBlocked:
      stats_.blocked.fetch_add(1, std::memory_order_relaxed);
      io_loop_.add_blocked(sb);
      // add_blocked fails open (bad fd, epoll error): the sandbox comes
      // back runnable and the hostcall retries to surface the error.
      if (sb->state() == SandboxState::kRunnable) policy_->enqueue(sb);
      break;
    case SandboxState::kComplete:
    case SandboxState::kFailed:
    case SandboxState::kKilled:
      finalize(sb);
      break;
    default:
      SLEDGE_LOG_ERROR("worker %d: sandbox in unexpected state", index_);
      rt_->note_retired(static_cast<LoadedModule*>(sb->user_tag));
      delete sb;
      break;
  }
}

void Worker::finalize(Sandbox* sb) {
  if (sb->pooled()) {
    stats_.pool_hits.fetch_add(1, std::memory_order_relaxed);
  } else {
    stats_.pool_misses.fetch_add(1, std::memory_order_relaxed);
  }
  SandboxState st = sb->state();
  if (st == SandboxState::kComplete) {
    stats_.completed.fetch_add(1, std::memory_order_relaxed);
  } else if (st == SandboxState::kKilled) {
    stats_.killed.fetch_add(1, std::memory_order_relaxed);
  } else {
    stats_.failed.fetch_add(1, std::memory_order_relaxed);
  }

  rt_->record_completion(sb, st);

  // A child sandbox (sb_invoke) reports through its InvokeJoin instead of
  // an HTTP response; its parent may be blocked on another worker.
  signal_join(sb,
              st == SandboxState::kComplete ? 0 : engine::kSbErrChildFailed,
              /*take_response=*/st == SandboxState::kComplete);

  if (sb->conn_fd() >= 0) {
    // Header and body stay separate: the body is moved (not copied) out of
    // the sandbox and pump_writes sends both as one writev.
    int status;
    std::string header;
    std::vector<uint8_t> body;
    if (st == SandboxState::kComplete) {
      status = 200;
      body = std::move(sb->response());
      header = http::serialize_response_header(200, "OK", body.size(),
                                               sb->keep_alive());
    } else if (st == SandboxState::kKilled) {
      status = 504;
      std::string reason = sb->outcome().describe();
      body.assign(reason.begin(), reason.end());
      header = http::serialize_response_header(504, "Gateway Timeout",
                                               body.size(), sb->keep_alive());
    } else {
      status = 500;
      std::string reason = sb->outcome().describe();
      body.assign(reason.begin(), reason.end());
      header = http::serialize_response_header(500, "Function Error",
                                               body.size(), sb->keep_alive());
    }
    // The response-write phase outlives the sandbox: the breakdown rides on
    // the WriteJob and is recorded when the last byte reaches the kernel.
    RequestTrace trace;
    trace.mod = static_cast<LoadedModule*>(sb->user_tag);
    trace.status = status;
    trace.created_ns = sb->created_ns();
    trace.done_ns = sb->done_ns();
    trace.queue_wait_ns = sb->queue_wait_ns();
    trace.startup_ns = sb->startup_cost_ns();
    trace.exec_cpu_ns = sb->cpu_ns();
    trace.io_wait_ns = sb->io_wait_ns();
    trace.dispatches = sb->dispatch_count();
    trace.preempts = sb->preempt_count();
    rt_->note_write_queued();
    writes_.push_back(WriteJob{sb->conn_fd(), std::move(header),
                               std::move(body), 0, sb->keep_alive(),
                               sb->conn_shard(), sb->conn_gen(), trace});
  }
  delete sb;
  pump_writes();
}

void Worker::abandon(Sandbox* sb) {
  stats_.drained.fetch_add(1, std::memory_order_relaxed);
  rt_->note_retired(static_cast<LoadedModule*>(sb->user_tag));
  signal_join(sb, engine::kSbErrChildFailed, /*take_response=*/false);
  if (sb->conn_fd() >= 0) {
    rt_->forget_connection(sb->conn_fd(), sb->conn_shard(), sb->conn_gen());
    ::close(sb->conn_fd());  // no response is coming
  }
  delete sb;
}

void Worker::admit_woken(std::vector<Sandbox*>* woken) {
  for (Sandbox* sb : *woken) {
    stats_.woken.fetch_add(1, std::memory_order_relaxed);
    policy_->enqueue(sb);
  }
  woken->clear();
}

void Worker::signal_join(Sandbox* sb, int32_t status, bool take_response) {
  const std::shared_ptr<InvokeJoin>& join = sb->result_join();
  if (!join) return;
  // Status and payload must be visible before done flips: the parent reads
  // them after an acquire load of done.
  join->status = status;
  // On the shm dataplane the response bytes are already in the transfer
  // buffer; harvest publishes the length instead of moving a vector.
  if (take_response) sb->harvest_response(join.get());
  join->done.store(true, std::memory_order_release);
  rt_->notify_worker(join->waiter_worker);
}

bool Worker::pump_writes() {
  bool progressed = false;
  for (size_t i = 0; i < writes_.size();) {
    WriteJob& w = writes_[i];
    const size_t total = w.header.size() + w.body.size();
    bool done = false, dead = false;
    while (w.offset < total) {
      // Zero-copy: header and body leave as one writev, no concatenation.
      iovec iov[2];
      int cnt = 0;
      if (w.offset < w.header.size()) {
        iov[cnt].iov_base =
            const_cast<char*>(w.header.data()) + w.offset;
        iov[cnt].iov_len = w.header.size() - w.offset;
        ++cnt;
        if (!w.body.empty()) {
          iov[cnt].iov_base = w.body.data();
          iov[cnt].iov_len = w.body.size();
          ++cnt;
        }
      } else {
        size_t boff = w.offset - w.header.size();
        iov[cnt].iov_base = w.body.data() + boff;
        iov[cnt].iov_len = w.body.size() - boff;
        ++cnt;
      }
      msghdr msg{};
      msg.msg_iov = iov;
      msg.msg_iovlen = static_cast<size_t>(cnt);
      ssize_t n = ::sendmsg(w.fd, &msg, MSG_NOSIGNAL);
      if (n > 0) {
        w.offset += static_cast<size_t>(n);
        progressed = true;
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      dead = true;  // peer went away
      break;
    }
    if (w.offset == total) done = true;

    if (done || dead) {
      io_loop_.unwatch_write_fd(w.fd);
      complete_write(w, now_ns(), done && !dead);
      if (done && w.keep_alive && !dead) {
        rt_->return_connection(w.fd, w.shard, w.gen);
      } else {
        rt_->forget_connection(w.fd, w.shard, w.gen);
        ::close(w.fd);
      }
      rt_->note_write_done();
      writes_[i] = std::move(writes_.back());
      writes_.pop_back();
      progressed = true;
    } else {
      io_loop_.watch_write_fd(w.fd);  // EAGAIN: park for EPOLLOUT
      ++i;
    }
  }
  return progressed;
}

void Worker::complete_write(const WriteJob& w, uint64_t now, bool write_ok) {
  const RequestTrace& t = w.trace;
  const size_t total = w.header.size() + w.body.size();
  uint64_t write_ns = now > t.done_ns ? now - t.done_ns : 0;
  if (write_ok) rt_->record_response_write(t.mod, write_ns, total);
  if (!rt_->access_log_enabled() || t.mod == nullptr) return;

  uint64_t e2e_ns = now > t.created_ns ? now - t.created_ns : 0;
  char line[512];
  int n = std::snprintf(
      line, sizeof(line),
      "{\"module\":\"%s\",\"status\":%d,\"bytes\":%zu,\"worker\":%d,"
      "\"queue_wait_us\":%.1f,\"startup_us\":%.1f,\"exec_cpu_us\":%.1f,"
      "\"io_wait_us\":%.1f,\"response_write_us\":%.1f,\"e2e_us\":%.1f,"
      "\"dispatches\":%u,\"preempts\":%u,\"write_ok\":%s}\n",
      t.mod->name.c_str(), t.status, total, index_,
      static_cast<double>(t.queue_wait_ns) / 1e3,
      static_cast<double>(t.startup_ns) / 1e3,
      static_cast<double>(t.exec_cpu_ns) / 1e3,
      static_cast<double>(t.io_wait_ns) / 1e3,
      static_cast<double>(write_ns) / 1e3, static_cast<double>(e2e_ns) / 1e3,
      t.dispatches, t.preempts, write_ok ? "true" : "false");
  if (n > 0) access_buf_.append(line, std::min(sizeof(line) - 1,
                                               static_cast<size_t>(n)));
  if (access_buf_.size() >= 32 * 1024) flush_access_log();
}

void Worker::flush_access_log() {
  if (access_buf_.empty()) return;
  rt_->access_log_write(access_buf_);
  access_buf_.clear();
}

}  // namespace sledge::runtime
