#include "sledge/worker.hpp"

#include <errno.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/syscall.h>
#include <time.h>
#include <unistd.h>

#include <cstring>

#include <algorithm>
#include <mutex>

#include "common/clock.hpp"
#include "common/log.hpp"
#include "engine/trap.hpp"
#include "http/http.hpp"
#include "sledge/runtime.hpp"

namespace sledge::runtime {

namespace {
thread_local Worker* tls_worker = nullptr;
}

// Quantum expiry: save the running sandbox's context (the paper's
// mcontext_t save) and switch to the scheduler context. Runs on the
// sandbox's stack; the sandbox resumes by returning from this handler.
void worker_quantum_handler(int) {
  Worker* w = tls_worker;
  if (!w) return;
  Sandbox* sb = w->current_;
  if (!sb || sb->state() != SandboxState::kRunning) return;
  sb->set_state(SandboxState::kRunnable);
  w->stats_.preemptions.fetch_add(1, std::memory_order_relaxed);
  ::swapcontext(sb->context(), &w->sched_ctx_);
  // Resumed: returning re-enters the interrupted sandbox code.
}

namespace {

void install_quantum_handler_once() {
  static std::once_flag once;
  std::call_once(once, [] {
    struct sigaction sa;
    sa.sa_handler = worker_quantum_handler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = SA_RESTART;
    sigaction(SIGALRM, &sa, nullptr);
  });
}

}  // namespace

Worker::Worker(Runtime* rt, int index) : rt_(rt), index_(index) {}

Worker::~Worker() { join(); }

void Worker::start() {
  thread_ = std::thread([this] { thread_main(); });
}

void Worker::join() {
  if (thread_.joinable()) thread_.join();
}

void Worker::setup_timer() {
  struct sigevent sev;
  std::memset(&sev, 0, sizeof(sev));
  sev.sigev_notify = SIGEV_THREAD_ID;
  sev.sigev_signo = SIGALRM;
  sev._sigev_un._tid = static_cast<pid_t>(::syscall(SYS_gettid));
  if (::timer_create(CLOCK_MONOTONIC, &sev, &timer_) == 0) {
    timer_valid_ = true;
  } else {
    SLEDGE_LOG_WARN("worker %d: timer_create failed; preemption disabled",
                    index_);
  }
}

void Worker::arm_timer() {
  if (!timer_valid_) return;
  uint64_t us = rt_->config().quantum_us;
  itimerspec its{};
  its.it_value.tv_sec = us / 1'000'000;
  its.it_value.tv_nsec = (us % 1'000'000) * 1000;
  ::timer_settime(timer_, 0, &its, nullptr);
}

void Worker::disarm_timer() {
  if (!timer_valid_) return;
  itimerspec its{};  // zero = disarm
  ::timer_settime(timer_, 0, &its, nullptr);
}

void Worker::thread_main() {
  tls_worker = this;
  engine::ensure_sigaltstack();

  // The scheduler runs with SIGALRM blocked; only sandbox contexts (whose
  // uc_sigmask unblocks it) can take the quantum signal.
  sigset_t mask;
  sigemptyset(&mask);
  sigaddset(&mask, SIGALRM);
  pthread_sigmask(SIG_BLOCK, &mask, nullptr);

  if (rt_->config().preemption) {
    install_quantum_handler_once();
    setup_timer();
  }

  int idle_spins = 0;
  while (rt_->running()) {
    pump_timers();
    bool wrote = pump_writes();

    Sandbox* sb = next_sandbox();
    if (!sb) {
      if (wrote || !writes_.empty() || !sleeping_.empty()) {
        idle_spins = 0;
        continue;  // I/O in flight: stay hot
      }
      // Idle loop: back off briefly, then re-check the deque (this is where
      // new-request dequeueing integrates with scheduling, paper §3.4).
      if (++idle_spins > 64) {
        ::usleep(200);
      }
      continue;
    }
    idle_spins = 0;
    dispatch(sb);
  }

  // Drain without running: connections die with the process lifetime.
  Sandbox* sb = nullptr;
  while (rt_->distributor().fetch(index_, &sb)) delete sb;
  for (Sandbox* s : runqueue_) delete s;
  for (Sandbox* s : sleeping_) delete s;
  for (WriteJob& w : writes_) ::close(w.fd);
  runqueue_.clear();
  sleeping_.clear();
  writes_.clear();

  if (timer_valid_) ::timer_delete(timer_);
  tls_worker = nullptr;
}

Sandbox* Worker::next_sandbox() {
  // Dequeueing of new requests is integrated into the scheduling loop
  // (paper §3.4): admit at most one stolen request per iteration so freshly
  // arrived short functions round-robin fairly with long-running preempted
  // ones, while idle workers (empty runqueue) still drain the deque fast.
  Sandbox* stolen = nullptr;
  if (rt_->distributor().fetch(index_, &stolen)) {
    stats_.steals.fetch_add(1, std::memory_order_relaxed);
    runqueue_.push_back(stolen);
  }
  if (runqueue_.empty()) return nullptr;
  Sandbox* sb = runqueue_.front();
  runqueue_.pop_front();
  return sb;
}

void Worker::dispatch(Sandbox* sb) {
  stats_.dispatches.fetch_add(1, std::memory_order_relaxed);
  current_ = sb;
  if (rt_->config().preemption) arm_timer();
  sb->dispatch(&sched_ctx_);
  if (rt_->config().preemption) disarm_timer();
  current_ = nullptr;

  switch (sb->state()) {
    case SandboxState::kRunnable:  // preempted: round-robin to the tail
      runqueue_.push_back(sb);
      break;
    case SandboxState::kBlocked:
      sleeping_.push_back(sb);
      break;
    case SandboxState::kComplete:
    case SandboxState::kFailed:
      finalize(sb);
      break;
    default:
      SLEDGE_LOG_ERROR("worker %d: sandbox in unexpected state", index_);
      delete sb;
      break;
  }
}

void Worker::finalize(Sandbox* sb) {
  bool ok = sb->state() == SandboxState::kComplete;
  if (ok) {
    stats_.completed.fetch_add(1, std::memory_order_relaxed);
  } else {
    stats_.failed.fetch_add(1, std::memory_order_relaxed);
  }

  rt_->record_completion(sb, ok);

  if (sb->conn_fd() >= 0) {
    std::string payload;
    if (ok) {
      payload = http::serialize_response(200, "OK", sb->response(),
                                         sb->keep_alive());
    } else {
      std::string reason = sb->outcome().describe();
      payload = http::serialize_response(
          500, "Function Error",
          std::vector<uint8_t>(reason.begin(), reason.end()),
          sb->keep_alive());
    }
    writes_.push_back(WriteJob{sb->conn_fd(), std::move(payload), 0,
                               sb->keep_alive()});
  }
  delete sb;
  pump_writes();
}

void Worker::pump_timers() {
  if (sleeping_.empty()) return;
  uint64_t now = now_ns();
  for (size_t i = 0; i < sleeping_.size();) {
    if (sleeping_[i]->wake_at_ns() <= now) {
      Sandbox* sb = sleeping_[i];
      sb->set_state(SandboxState::kRunnable);
      runqueue_.push_back(sb);
      sleeping_[i] = sleeping_.back();
      sleeping_.pop_back();
    } else {
      ++i;
    }
  }
}

bool Worker::pump_writes() {
  bool progressed = false;
  for (size_t i = 0; i < writes_.size();) {
    WriteJob& w = writes_[i];
    bool done = false, dead = false;
    while (w.offset < w.data.size()) {
      ssize_t n = ::send(w.fd, w.data.data() + w.offset,
                         w.data.size() - w.offset, MSG_NOSIGNAL);
      if (n > 0) {
        w.offset += static_cast<size_t>(n);
        progressed = true;
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      dead = true;  // peer went away
      break;
    }
    if (w.offset == w.data.size()) done = true;

    if (done || dead) {
      if (done && w.keep_alive && !dead) {
        rt_->return_connection(w.fd);
      } else {
        ::close(w.fd);
      }
      writes_[i] = std::move(writes_.back());
      writes_.pop_back();
      progressed = true;
    } else {
      ++i;
    }
  }
  return progressed;
}

}  // namespace sledge::runtime
