#include "sledge/scheduler_policy.hpp"

#include <algorithm>
#include <deque>
#include <vector>

namespace sledge::runtime {

const char* to_string(SchedPolicy p) {
  switch (p) {
    case SchedPolicy::kRoundRobin: return "round_robin";
    case SchedPolicy::kFifoRunToCompletion: return "fifo";
    case SchedPolicy::kEdf: return "edf";
  }
  return "?";
}

namespace {

// kRoundRobin and kFifoRunToCompletion share the queue discipline; they
// differ only in whether the quantum timer is allowed to fire.
class FifoQueuePolicy : public SchedulerPolicy {
 public:
  explicit FifoQueuePolicy(SchedPolicy kind) : kind_(kind) {}

  SchedPolicy kind() const override { return kind_; }
  void enqueue(Sandbox* sb) override { queue_.push_back(sb); }
  Sandbox* pick_next() override {
    if (queue_.empty()) return nullptr;
    Sandbox* sb = queue_.front();
    queue_.pop_front();
    return sb;
  }
  size_t size() const override { return queue_.size(); }
  bool allows_preemption() const override {
    return kind_ == SchedPolicy::kRoundRobin;
  }
  bool admit_eagerly() const override { return false; }

 private:
  SchedPolicy kind_;
  std::deque<Sandbox*> queue_;
};

class EdfPolicy : public SchedulerPolicy {
 public:
  SchedPolicy kind() const override { return SchedPolicy::kEdf; }

  void enqueue(Sandbox* sb) override {
    uint64_t deadline = sb->deadline_at_ns();
    heap_.push_back(Entry{deadline == 0 ? UINT64_MAX : deadline, seq_++, sb});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
  }

  Sandbox* pick_next() override {
    if (heap_.empty()) return nullptr;
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Sandbox* sb = heap_.back().sb;
    heap_.pop_back();
    return sb;
  }

  size_t size() const override { return heap_.size(); }
  bool allows_preemption() const override { return true; }
  bool admit_eagerly() const override { return true; }

 private:
  struct Entry {
    uint64_t deadline;  // absolute ns; UINT64_MAX = no deadline
    uint64_t seq;       // FIFO tie-break
    Sandbox* sb;
  };
  // Min-heap on (deadline, seq) via std::*_heap's max-heap comparator.
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.deadline != b.deadline) return a.deadline > b.deadline;
      return a.seq > b.seq;
    }
  };

  std::vector<Entry> heap_;
  uint64_t seq_ = 0;
};

}  // namespace

std::unique_ptr<SchedulerPolicy> SchedulerPolicy::make(SchedPolicy kind) {
  switch (kind) {
    case SchedPolicy::kEdf:
      return std::make_unique<EdfPolicy>();
    case SchedPolicy::kRoundRobin:
    case SchedPolicy::kFifoRunToCompletion:
      break;
  }
  return std::make_unique<FifoQueuePolicy>(kind);
}

}  // namespace sledge::runtime
