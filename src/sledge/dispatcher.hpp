// The dispatcher layer: how admitted sandboxes travel from the listener to
// a worker core. Sits above the per-worker SchedulerPolicy (which orders a
// worker's *local* runnable set) and decides the *global* hand-out:
//
//   kWorkStealing — the paper's design: a global Chase–Lev deque (or the
//                   lock/per-worker ablations of DistPolicy) that any idle
//                   worker drains. Deadline-blind but work-conserving.
//   kGlobalEdf    — one centralized deadline-sorted admit order: every
//                   fetch() pops the earliest absolute deadline across ALL
//                   queued requests (deadline-less requests sort last, FIFO
//                   ties). The SLEdgeScale-style "task-deadline-aware"
//                   hand-out; a mutexed binary heap, so scalability is
//                   traded for global deadline order.
//   kShardedByModule — requests are placed on a per-worker shard chosen by
//                   hashing the target module: one module's requests always
//                   land on the same core (cache locality, per-module
//                   isolation), no stealing, not work-conserving.
//
// Every dispatcher composes with every per-worker SchedulerPolicy: the
// dispatcher fixes the order in which a worker *receives* work, the policy
// the order in which the worker *runs* what it holds.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "sledge/deque.hpp"
#include "sledge/sandbox.hpp"

namespace sledge::runtime {

// Work-distribution policy of the kWorkStealing dispatcher (the queue
// ablation of DESIGN.md):
//   kWorkStealing — lock-free global Chase–Lev deque (the paper's design)
//   kGlobalLock   — one mutex-protected FIFO (work-conserving, not scalable)
//   kPerWorker    — per-worker mutex FIFOs, round-robin assignment, no
//                   stealing (scalable, not work-conserving)
enum class DistPolicy : uint8_t { kWorkStealing, kGlobalLock, kPerWorker };

const char* to_string(DistPolicy p);

enum class DispatchPolicy : uint8_t {
  kWorkStealing = 0,
  kGlobalEdf = 1,
  kShardedByModule = 2,
};

const char* to_string(DispatchPolicy p);

// Work distribution with swappable policy. push() is listener-shard-only
// for kWorkStealing; with N listener shards the Chase–Lev owner end has N
// producers, so owner-end sessions are serialized by `push_mu_` (steals stay
// lock-free). inject() is the any-thread side entrance (sb_invoke children
// are admitted from worker threads, which must not touch the owner end).
class Distributor {
 public:
  Distributor(DistPolicy policy, int workers);

  void push(Sandbox* sb);
  // Batched admission: one owner-end session / lock acquisition for the
  // whole epoll tick instead of one per request.
  void push_batch(Sandbox* const* sbs, size_t n);
  // `worker_hint` >= 0 asks for placement on that worker's hinted queue
  // (invoke locality: the child runs where the parent's caches are warm).
  // The hint is advisory — a full hinted queue falls back to the shared
  // side entrance, and any worker's fetch() can still serve global work.
  void inject(Sandbox* sb, int worker_hint = -1);
  bool fetch(int worker_index, Sandbox** out);
  int64_t backlog_estimate() const;

 private:
  DistPolicy policy_;
  int workers_;
  // Serializes the Chase–Lev owner end across listener shards. The deque's
  // owner ops assume one thread; the mutex gives successive owners a
  // happens-before edge, which is all the algorithm needs.
  std::mutex push_mu_;
  WorkStealingDeque<Sandbox*> deque_;
  mutable std::mutex global_mu_;
  std::deque<Sandbox*> global_q_;
  mutable std::mutex inject_mu_;
  std::deque<Sandbox*> inject_q_;
  std::atomic<int64_t> inject_count_{0};  // lock-free emptiness probe
  struct PerWorkerQ {
    std::mutex mu;
    std::deque<Sandbox*> q;
  };
  std::vector<std::unique_ptr<PerWorkerQ>> per_worker_;
  // Locality-hinted inject queues, one per worker, drained by that worker's
  // fetch() ahead of everything else. Counts are lock-free probes so the
  // hot fetch path pays one relaxed load when locality is unused.
  struct HintQ {
    std::mutex mu;
    std::deque<Sandbox*> q;
    std::atomic<int32_t> count{0};
  };
  std::vector<std::unique_ptr<HintQ>> hinted_;
  std::atomic<uint64_t> rr_cursor_{0};
};

// The pluggable hand-out structure. Contracts shared by every
// implementation:
//   push()   — listener-thread admit (single producer; kWorkStealing owns
//              the Chase–Lev producer end there).
//   inject() — any-thread side entrance (sb_invoke children admitted from
//              worker threads).
//   fetch()  — worker-side dequeue; returns false when nothing is available
//              for `worker_index`. Each pushed sandbox is returned by
//              exactly one successful fetch (no loss, no duplication).
//   backlog_estimate() — racy size probe for drain/observability.
class Dispatcher {
 public:
  virtual ~Dispatcher() = default;

  virtual DispatchPolicy kind() const = 0;
  virtual void push(Sandbox* sb) = 0;
  // Admit a whole epoll tick's worth of sandboxes in one call (listener
  // shards batch admissions; queue kinds that lock can amortize to one
  // acquisition). Default just loops over push().
  virtual void push_batch(Sandbox* const* sbs, size_t n) {
    for (size_t i = 0; i < n; ++i) push(sbs[i]);
  }
  // `worker_hint` >= 0 prefers that worker (invoke locality). Dispatchers
  // whose placement semantics dominate (global deadline order, module
  // affinity) may ignore it; work-stealing honors it.
  virtual void inject(Sandbox* sb, int worker_hint = -1) = 0;
  virtual bool fetch(int worker_index, Sandbox** out) = 0;
  virtual int64_t backlog_estimate() const = 0;

  // `dist` only affects kWorkStealing (the queue ablation rides along).
  static std::unique_ptr<Dispatcher> make(DispatchPolicy policy,
                                          DistPolicy dist, int workers);
};

}  // namespace sledge::runtime
