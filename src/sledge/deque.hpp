// Lock-free Chase–Lev work-stealing deque (Chase & Lev, SPAA'05, with the
// C11-memory-model corrections of Lê et al., PPoPP'13).
//
// Sledge's global work-distribution structure: the listener core is the
// single owner (push/take at the bottom), worker cores are thieves (steal
// from the top). This decouples work distribution from the per-core
// scheduling that provides temporal isolation — the central design split of
// the paper (§3.4).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

namespace sledge::runtime {

template <typename T>
class WorkStealingDeque {
 public:
  explicit WorkStealingDeque(size_t initial_capacity = 256)
      : buffer_(new Buffer(round_up(initial_capacity))) {}

  ~WorkStealingDeque() {
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    while (buf) {
      Buffer* prev = buf->prev;
      delete buf;
      buf = prev;
    }
  }

  WorkStealingDeque(const WorkStealingDeque&) = delete;
  WorkStealingDeque& operator=(const WorkStealingDeque&) = delete;

  // Owner only. Grows the ring when full (old buffers are retired lazily —
  // thieves may still be reading them).
  void push(T item) {
    int64_t b = bottom_.load(std::memory_order_relaxed);
    int64_t t = top_.load(std::memory_order_acquire);
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    if (b - t > static_cast<int64_t>(buf->capacity) - 1) {
      buf = grow(buf, t, b);
    }
    buf->put(b, item);
    std::atomic_thread_fence(std::memory_order_release);
    bottom_.store(b + 1, std::memory_order_relaxed);
  }

  // Owner only: LIFO pop from the bottom. Returns false when empty.
  bool take(T* out) {
    int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    bottom_.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    int64_t t = top_.load(std::memory_order_relaxed);
    if (t > b) {
      bottom_.store(b + 1, std::memory_order_relaxed);
      return false;
    }
    T item = buf->get(b);
    if (t == b) {
      // Last element: race against thieves.
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        bottom_.store(b + 1, std::memory_order_relaxed);
        return false;
      }
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    *out = item;
    return true;
  }

  // Any thread: FIFO steal from the top. Returns false when empty or lost
  // a race (caller retries or goes idle).
  bool steal(T* out) {
    int64_t t = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    int64_t b = bottom_.load(std::memory_order_acquire);
    if (t >= b) return false;
    Buffer* buf = buffer_.load(std::memory_order_consume);
    T item = buf->get(t);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return false;
    }
    *out = item;
    return true;
  }

  // Approximate (racy) size; used for idle heuristics and stats only.
  int64_t size_estimate() const {
    int64_t b = bottom_.load(std::memory_order_relaxed);
    int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? b - t : 0;
  }

 private:
  struct Buffer {
    explicit Buffer(size_t cap)
        : capacity(cap), mask(cap - 1), slots(new std::atomic<T>[cap]) {}
    ~Buffer() { delete[] slots; }

    T get(int64_t i) const {
      return slots[static_cast<size_t>(i) & mask].load(
          std::memory_order_relaxed);
    }
    void put(int64_t i, T v) {
      slots[static_cast<size_t>(i) & mask].store(v,
                                                 std::memory_order_relaxed);
    }

    size_t capacity;
    size_t mask;
    std::atomic<T>* slots;
    Buffer* prev = nullptr;  // retired-buffer chain (freed at destruction)
  };

  static size_t round_up(size_t n) {
    size_t c = 16;
    while (c < n) c <<= 1;
    return c;
  }

  Buffer* grow(Buffer* old, int64_t t, int64_t b) {
    Buffer* bigger = new Buffer(old->capacity * 2);
    for (int64_t i = t; i < b; ++i) bigger->put(i, old->get(i));
    bigger->prev = old;  // keep old alive: thieves may hold a reference
    buffer_.store(bigger, std::memory_order_release);
    return bigger;
  }

  std::atomic<int64_t> top_{0};
  std::atomic<int64_t> bottom_{0};
  std::atomic<Buffer*> buffer_;
};

}  // namespace sledge::runtime
