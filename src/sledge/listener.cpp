#include "sledge/listener.hpp"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cstring>

#include "common/clock.hpp"
#include "common/log.hpp"
#include "sledge/runtime.hpp"

namespace sledge::runtime {

namespace {

// Malformed request: terse 400 and hang up.
const char k400[] =
    "HTTP/1.1 400 Bad Request\r\nContent-Length: 0\r\nConnection: "
    "close\r\n\r\n";

// Bound on the blocking pre-admission flush (parked response bytes must hit
// the socket before a worker takes over the fd, or response order breaks).
constexpr uint64_t kFlushTimeoutNs = 2'000'000'000;

// How long accept stays disarmed after an unshedable EMFILE (no reserve fd
// could be reclaimed): long enough to stop the 100%-CPU accept spin, short
// enough that recovery after fds free up is prompt.
constexpr uint64_t kAcceptBackoffNs = 10'000'000;  // 10 ms

// Single sendmsg of header+body iovecs starting at logical offset `off`
// into the concatenation. Returns sendmsg's result.
ssize_t send_iovecs(int fd, const std::string& header, const void* body,
                    size_t body_len, size_t off) {
  iovec iov[2];
  int cnt = 0;
  if (off < header.size()) {
    iov[cnt].iov_base = const_cast<char*>(header.data()) + off;
    iov[cnt].iov_len = header.size() - off;
    ++cnt;
    if (body_len != 0) {
      iov[cnt].iov_base = const_cast<void*>(body);
      iov[cnt].iov_len = body_len;
      ++cnt;
    }
  } else {
    size_t boff = off - header.size();
    iov[cnt].iov_base = static_cast<char*>(const_cast<void*>(body)) + boff;
    iov[cnt].iov_len = body_len - boff;
    ++cnt;
  }
  msghdr msg{};
  msg.msg_iov = iov;
  msg.msg_iovlen = static_cast<size_t>(cnt);
  return ::sendmsg(fd, &msg, MSG_NOSIGNAL);
}

}  // namespace

Listener::Listener(Runtime* rt, int shard) : rt_(rt), shard_(shard) {}

Listener::~Listener() {
  join();
  // The loop stopped pumping the return/discard queues the moment
  // running() flipped, but workers may have queued entries right up to
  // their own exit. Returned fds are open keep-alive connections nobody
  // owns anymore — close them here or they leak for the process lifetime.
  // (Queues are quiet now: workers and this thread are joined.)
  {
    std::lock_guard<std::mutex> lock(ret_mu_);
    for (const auto& [fd, gen] : returned_) {
      auto it = loaned_.find(fd);
      if (it != loaned_.end() && it->second->gen == gen) loaned_.erase(it);
      ::close(fd);
    }
    returned_.clear();
    discarded_.clear();  // fds already closed worker-side; just drop state
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (event_fd_ >= 0) ::close(event_fd_);
  if (reserve_fd_ >= 0) ::close(reserve_fd_);
  for (auto& [fd, conn] : conns_) ::close(fd);
  // Remaining loaned_ fds belong to workers (already closed worker-side by
  // now); closing them here could hit a recycled descriptor.
}

Status Listener::init(uint16_t port, uint16_t* bound_port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (listen_fd_ < 0) return Status::error("socket() failed");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  // Every shard binds the same port; the kernel hashes incoming 4-tuples
  // across the REUSEPORT group so each connection lands on exactly one
  // shard's accept queue.
  if (::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) <
      0) {
    return Status::error("setsockopt(SO_REUSEPORT) failed: " +
                         std::string(strerror(errno)));
  }

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return Status::error("bind() failed: " + std::string(strerror(errno)));
  }
  if (::listen(listen_fd_, 1024) < 0) return Status::error("listen() failed");

  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  *bound_port = ntohs(addr.sin_port);

  epoll_fd_ = ::epoll_create1(0);
  if (epoll_fd_ < 0) return Status::error("epoll_create1 failed");
  event_fd_ = ::eventfd(0, EFD_NONBLOCK);
  if (event_fd_ < 0) return Status::error("eventfd failed");
  // EMFILE headroom: one reserved fd this shard can burn to accept-and-
  // close when the process fd table is full (see shed_one_accept).
  reserve_fd_ = ::open("/dev/null", O_RDONLY | O_CLOEXEC);

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.fd = event_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, event_fd_, &ev);
  return Status::ok();
}

void Listener::start() {
  thread_ = std::thread([this] { thread_main(); });
}

void Listener::join() {
  if (thread_.joinable()) thread_.join();
}

void Listener::wake() {
  if (event_fd_ >= 0) {
    uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(event_fd_, &one, sizeof(one));
  }
}

void Listener::return_connection(int fd, uint64_t gen) {
  {
    std::lock_guard<std::mutex> lock(ret_mu_);
    returned_.emplace_back(fd, gen);
  }
  wake();
}

void Listener::discard_connection(int fd, uint64_t gen) {
  {
    std::lock_guard<std::mutex> lock(ret_mu_);
    discarded_.emplace_back(fd, gen);
  }
  wake();
}

void Listener::drain_returned() {
  uint64_t junk;
  while (::read(event_fd_, &junk, sizeof(junk)) > 0) {
  }
  std::vector<std::pair<int, uint64_t>> fds;
  std::vector<std::pair<int, uint64_t>> gone;
  {
    std::lock_guard<std::mutex> lock(ret_mu_);
    fds.swap(returned_);
    gone.swap(discarded_);
  }
  // Discards first: a stale loaned entry must never shadow a reattach.
  // The generation check makes "stale" precise in the other direction too:
  // after a worker closes fd N and queues this discard, the kernel may
  // recycle N into a brand-new connection that gets admitted (and loaned)
  // before the discard is processed — erasing by fd alone would destroy
  // the NEW loan's parked state. A discard only lands on the exact loan
  // generation it was issued for.
  for (const auto& [fd, gen] : gone) {
    auto it = loaned_.find(fd);
    if (it != loaned_.end() && it->second->gen == gen) {
      loaned_.erase(it);
      loaned_conns_.fetch_sub(1, std::memory_order_relaxed);
    }
  }
  for (const auto& [fd, gen] : fds) reattach_connection(fd, gen);
}

void Listener::add_connection(int fd) {
  auto conn = std::make_unique<Conn>();
  conn->fd = fd;
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
    ::close(fd);
    return;
  }
  conns_[fd] = std::move(conn);
  open_conns_.fetch_add(1, std::memory_order_relaxed);
}

void Listener::reattach_connection(int fd, uint64_t gen) {
  std::unique_ptr<Conn> conn;
  auto it = loaned_.find(fd);
  if (it != loaned_.end() && it->second->gen == gen) {
    conn = std::move(it->second);
    loaned_.erase(it);
    loaned_conns_.fetch_sub(1, std::memory_order_relaxed);
  } else {
    conn = std::make_unique<Conn>();
    conn->fd = fd;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
    ::close(fd);
    return;
  }
  Conn* c = conn.get();
  conns_[fd] = std::move(conn);
  open_conns_.fetch_add(1, std::memory_order_relaxed);
  // Replay bytes that arrived pipelined behind the request the worker just
  // answered; any bytes still in the kernel buffer will level-trigger
  // EPOLLIN on their own.
  if (!c->stash.empty()) {
    std::string bytes;
    bytes.swap(c->stash);
    (void)process_bytes(c, bytes.data(), bytes.size());
  }
}

void Listener::detach_to_loaned(Conn* conn) {
  int fd = conn->fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  auto it = conns_.find(fd);
  loaned_[fd] = std::move(it->second);
  conns_.erase(it);
  open_conns_.fetch_sub(1, std::memory_order_relaxed);
  loaned_conns_.fetch_add(1, std::memory_order_relaxed);
}

void Listener::drop_connection(int fd) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  open_conns_.fetch_sub(static_cast<int64_t>(conns_.erase(fd)),
                        std::memory_order_relaxed);
  ::close(fd);
}

void Listener::set_events(Conn* conn, uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = conn->fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
}

bool Listener::shed_one_accept() {
  accept_errors_.fetch_add(1, std::memory_order_relaxed);
  // Free one fd slot, take the pending connection, hang up on it, retake
  // the slot. Each round retires one queued connection, so the accept
  // backlog drains (slowly, with connection resets) instead of wedging the
  // shard in a 100%-CPU accept/EMFILE spin on the level-triggered EPOLLIN.
  if (reserve_fd_ >= 0) {
    ::close(reserve_fd_);
    reserve_fd_ = -1;
  }
  int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK);
  if (fd >= 0) ::close(fd);
  reserve_fd_ = ::open("/dev/null", O_RDONLY | O_CLOEXEC);
  return fd >= 0;
}

void Listener::disarm_accept() {
  epoll_event ev{};
  ev.events = 0;  // keep registered, deliver nothing
  ev.data.fd = listen_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, listen_fd_, &ev);
  accept_rearm_at_ns_ = now_ns() + kAcceptBackoffNs;
}

void Listener::rearm_accept_if_due(uint64_t now) {
  if (accept_rearm_at_ns_ == 0 || now < accept_rearm_at_ns_) return;
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, listen_fd_, &ev);
  accept_rearm_at_ns_ = 0;
}

void Listener::accept_new() {
  while (true) {
    int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if (errno == EMFILE || errno == ENFILE) {
        // fd pressure: shed via the reserve fd. If even that made no
        // progress (reserve already gone), back off instead of spinning.
        if (!shed_one_accept()) {
          disarm_accept();
          return;
        }
        continue;
      }
      accept_errors_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    accepted_.fetch_add(1, std::memory_order_relaxed);
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    add_connection(fd);
  }
}

bool Listener::conn_send(Conn* conn, const std::string& header,
                         const void* body, size_t body_len,
                         bool close_after) {
  if (!conn->outbuf.empty()) {
    // Earlier response still draining: append to keep socket order.
    conn->outbuf += header;
    if (body_len != 0) {
      conn->outbuf.append(static_cast<const char*>(body), body_len);
    }
    conn->close_after_write = conn->close_after_write || close_after;
    return true;
  }
  const size_t total = header.size() + body_len;
  size_t off = 0;
  while (off < total) {
    ssize_t n = send_iovecs(conn->fd, header, body, body_len, off);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Short write: park the remainder (the only copy on this path) and
      // let EPOLLOUT finish the job.
      if (off < header.size()) {
        conn->outbuf.assign(header, off, std::string::npos);
        if (body_len != 0) {
          conn->outbuf.append(static_cast<const char*>(body), body_len);
        }
      } else {
        conn->outbuf.assign(static_cast<const char*>(body) +
                                (off - header.size()),
                            body_len - (off - header.size()));
      }
      conn->outoff = 0;
      conn->close_after_write = close_after;
      set_events(conn, EPOLLOUT | (close_after ? 0u : EPOLLIN));
      return true;
    }
    drop_connection(conn->fd);  // peer went away
    return false;
  }
  if (close_after) {
    drop_connection(conn->fd);
    return false;
  }
  return true;
}

bool Listener::handle_writable(Conn* conn) {
  while (conn->outoff < conn->outbuf.size()) {
    ssize_t n = ::send(conn->fd, conn->outbuf.data() + conn->outoff,
                       conn->outbuf.size() - conn->outoff, MSG_NOSIGNAL);
    if (n > 0) {
      conn->outoff += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    drop_connection(conn->fd);
    return false;
  }
  conn->outbuf.clear();
  conn->outoff = 0;
  if (conn->close_after_write) {
    drop_connection(conn->fd);
    return false;
  }
  set_events(conn, EPOLLIN);
  return true;
}

bool Listener::flush_outbuf_blocking(Conn* conn) {
  uint64_t deadline = now_ns() + kFlushTimeoutNs;
  while (conn->outoff < conn->outbuf.size()) {
    ssize_t n = ::send(conn->fd, conn->outbuf.data() + conn->outoff,
                       conn->outbuf.size() - conn->outoff, MSG_NOSIGNAL);
    if (n > 0) {
      conn->outoff += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (now_ns() >= deadline) return false;
      pollfd pfd{conn->fd, POLLOUT, 0};
      ::poll(&pfd, 1, 50);
      continue;
    }
    return false;
  }
  conn->outbuf.clear();
  conn->outoff = 0;
  return true;
}

void Listener::flush_admitted() {
  if (pending_admits_.empty()) return;
  rt_->dispatcher().push_batch(pending_admits_.data(),
                               pending_admits_.size());
  pending_admits_.clear();
  rt_->notify_workers();  // one wake per tick, not per request
}

Listener::Consume Listener::process_bytes(Conn* conn, const char* data,
                                          size_t n) {
  size_t off = 0;
  while (off < n) {
    int used = conn->parser.feed(data + off, n - off);
    if (used < 0) {
      (void)conn_send(conn, std::string(k400, sizeof(k400) - 1), true);
      return Consume::kStop;
    }
    off += static_cast<size_t>(used);
    if (!conn->parser.done()) continue;

    http::Request& req = conn->parser.request();
    bool keep_alive = req.keep_alive();

    // Chunked transfer encoding is not implemented; the parser consumed the
    // chunk framing (body discarded) so the stream is positioned at the
    // next request boundary — answer 501 and keep the connection usable.
    if (conn->parser.chunked()) {
      std::string header = http::serialize_response_header(
          501, "Not Implemented", 0, keep_alive, "text/plain");
      if (!conn_send(conn, header, nullptr, 0, !keep_alive)) {
        return Consume::kStop;
      }
      conn->parser.reset();
      continue;
    }

    // Live observability endpoints, answered on the listener thread from
    // brief lock-free/per-module-lock snapshots (no global pause).
    if (rt_->config().admin_endpoint &&
        req.target.compare(0, 7, "/admin/") == 0) {
      std::string body;
      std::string content_type;
      if (req.target == "/admin/stats") {
        body = rt_->stats_json();
        content_type = "application/json";
      } else if (req.target == "/admin/metrics") {
        body = rt_->stats_prometheus();
        content_type = "text/plain; version=0.0.4";
      }
      std::string header =
          body.empty()
              ? http::serialize_response_header(404, "Not Found", 0,
                                                keep_alive, "text/plain")
              : http::serialize_response_header(200, "OK", body.size(),
                                                keep_alive, content_type);
      if (!conn_send(conn, header, body.data(), body.size(), !keep_alive)) {
        return Consume::kStop;
      }
      conn->parser.reset();
      continue;
    }

    std::string name =
        req.target.empty() || req.target[0] != '/' ? req.target
                                                   : req.target.substr(1);
    LoadedModule* mod = rt_->find_module(name);
    if (!mod) {
      std::string header = http::serialize_response_header(
          404, "Not Found", 0, keep_alive, "text/plain");
      if (!conn_send(conn, header, nullptr, 0, !keep_alive)) {
        return Consume::kStop;
      }
      conn->parser.reset();
      continue;
    }

    // Admission control, all without building a sandbox: graceful drain
    // (503, longer Retry-After — this process is going away), overload /
    // fair-share / queue-slack shedding (503, short Retry-After — backoff
    // and retry likely succeeds), and the unmeetable-deadline gate
    // (504-early: even an empty queue cannot run this module inside its
    // deadline). All responses honor keep-alive so the client can reuse
    // the parked connection for the retry.
    if (rt_->draining()) {
      rt_->note_shed(mod);
      std::string header = http::serialize_response_header(
          503, "Draining", 0, keep_alive, "text/plain", "Retry-After: 5\r\n");
      if (!conn_send(conn, header, nullptr, 0, !keep_alive)) {
        return Consume::kStop;
      }
      conn->parser.reset();
      continue;
    }
    switch (rt_->admission_check(mod)) {
      case AdmitVerdict::kAdmit:
        break;
      case AdmitVerdict::kShedOverload: {
        rt_->note_shed(mod);
        std::string header = http::serialize_response_header(
            503, "Overloaded", 0, keep_alive, "text/plain",
            "Retry-After: 1\r\n");
        if (!conn_send(conn, header, nullptr, 0, !keep_alive)) {
          return Consume::kStop;
        }
        conn->parser.reset();
        continue;
      }
      case AdmitVerdict::kShedDeadline: {
        rt_->note_shed_deadline(mod);
        std::string header = http::serialize_response_header(
            504, "Deadline Unmeetable", 0, keep_alive, "text/plain",
            "Retry-After: 1\r\n");
        if (!conn_send(conn, header, nullptr, 0, !keep_alive)) {
          return Consume::kStop;
        }
        conn->parser.reset();
        continue;
      }
    }

    // Admission: the worker writes this request's response itself, so any
    // parked listener-side bytes must flush first to keep socket order.
    // The blocking flush can stall this shard, so hand off the sandboxes
    // already admitted this tick before entering it.
    if (!conn->outbuf.empty()) {
      flush_admitted();
      if (!flush_outbuf_blocking(conn)) {
        drop_connection(conn->fd);
        return Consume::kStop;
      }
    }

    std::vector<uint8_t> body = std::move(req.body);
    std::unique_ptr<Sandbox> sb =
        rt_->create_sandbox(mod, std::move(body), conn->fd, keep_alive);
    if (!sb) {
      rt_->note_shed(mod);
      std::string header = http::serialize_response_header(
          503, "Overloaded", 0, keep_alive, "text/plain",
          "Retry-After: 1\r\n");
      if (!conn_send(conn, header, nullptr, 0, !keep_alive)) {
        return Consume::kStop;
      }
      conn->parser.reset();
      continue;
    }
    sb->user_tag = mod;
    sb->set_conn_shard(shard_);  // workers return the fd to this shard
    // New loan generation: the worker echoes it in return/discard so a
    // recycled fd number can never alias a newer loan (see drain_returned).
    conn->gen = ++loan_gen_;
    sb->set_conn_gen(conn->gen);

    // Resolve limits: per-module override, else runtime default.
    const RuntimeConfig& rc = rt_->config();
    uint64_t budget = mod->limits.execution_budget_ns != 0
                          ? mod->limits.execution_budget_ns
                          : rc.execution_budget_ns;
    uint64_t deadline = mod->limits.deadline_ns != 0 ? mod->limits.deadline_ns
                                                     : rc.deadline_ns;
    sb->set_limits(budget, deadline != 0 ? sb->created_ns() + deadline : 0);
    // Async host I/O: the runtime brokers sb_invoke children; top-level
    // requests start at chain depth 0.
    sb->set_io_config(rt_, static_cast<uint32_t>(rc.max_sandbox_fds),
                      /*depth=*/0,
                      static_cast<uint32_t>(rc.max_invoke_depth));
    // Top-level requests seed the inter-function dataplane for any
    // sb_invoke chain they start (per-module override, else config-wide).
    sb->set_invoke_shm(rt_->module_invoke_shm(mod));

    {
      std::lock_guard<std::mutex> lock(mod->stats.mu);
      mod->stats.requests++;
      mod->stats.startup.record(sb->startup_cost_ns());
      (sb->snapshot_backed() ? mod->stats.startup_snapshot
       : sb->pooled()        ? mod->stats.startup_pooled
                             : mod->stats.startup_cold)
          .record(sb->startup_cost_ns());
    }

    // Stash already-received bytes of the next pipelined request; they are
    // replayed when the worker returns the connection (the old path
    // silently dropped them, hanging pipelining keep-alive clients).
    conn->parser.reset();
    conn->stash.assign(data + off, n - off);
    detach_to_loaned(conn);

    rt_->note_admitted(mod);
    // Batched admission: the sandbox joins this tick's batch and reaches
    // the dispatcher via one push_batch/notify_workers at tick end.
    pending_admits_.push_back(sb.release());
    return Consume::kStop;  // fd now belongs to the worker side
  }
  return Consume::kContinue;
}

void Listener::handle_readable(Conn* conn) {
  char buf[65536];
  while (true) {
    ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n == 0) {
      drop_connection(conn->fd);
      return;
    }
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      drop_connection(conn->fd);
      return;
    }
    if (process_bytes(conn, buf, static_cast<size_t>(n)) == Consume::kStop) {
      return;  // conn dropped, loaned out, or draining a close response
    }
  }
}

void Listener::thread_main() {
  epoll_event events[128];
  while (rt_->running()) {
    int n = ::epoll_wait(epoll_fd_, events, 128, 50);
    if (n < 0) {
      if (errno == EINTR) continue;
      SLEDGE_LOG_ERROR("listener[%d] epoll_wait failed: %s", shard_,
                       strerror(errno));
      break;
    }
    for (int i = 0; i < n; ++i) {
      int fd = events[i].data.fd;
      if (fd == listen_fd_) {
        accept_new();
        continue;
      }
      if (fd == event_fd_) {
        drain_returned();
        continue;
      }
      auto it = conns_.find(fd);
      if (it == conns_.end()) continue;
      Conn* conn = it->second.get();
      if (events[i].events & EPOLLOUT) {
        if (!handle_writable(conn)) continue;  // conn dropped
      }
      if (events[i].events & (EPOLLIN | EPOLLHUP | EPOLLERR)) {
        handle_readable(conn);
      }
    }
    // One dispatcher hand-off and one worker wake for the whole tick.
    flush_admitted();
    rearm_accept_if_due(now_ns());
  }
  flush_admitted();  // shutdown: nothing admitted may be stranded here
}

}  // namespace sledge::runtime
