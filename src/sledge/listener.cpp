#include "sledge/listener.hpp"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "common/log.hpp"
#include "sledge/runtime.hpp"

namespace sledge::runtime {

namespace {

Status set_nonblocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::error("fcntl O_NONBLOCK failed");
  }
  return Status::ok();
}

}  // namespace

Listener::Listener(Runtime* rt) : rt_(rt) {}

Listener::~Listener() {
  join();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (event_fd_ >= 0) ::close(event_fd_);
  for (auto& [fd, conn] : conns_) ::close(fd);
}

Status Listener::init(uint16_t port, uint16_t* bound_port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (listen_fd_ < 0) return Status::error("socket() failed");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return Status::error("bind() failed: " + std::string(strerror(errno)));
  }
  if (::listen(listen_fd_, 1024) < 0) return Status::error("listen() failed");

  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  *bound_port = ntohs(addr.sin_port);

  epoll_fd_ = ::epoll_create1(0);
  if (epoll_fd_ < 0) return Status::error("epoll_create1 failed");
  event_fd_ = ::eventfd(0, EFD_NONBLOCK);
  if (event_fd_ < 0) return Status::error("eventfd failed");

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.fd = event_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, event_fd_, &ev);
  return Status::ok();
}

void Listener::start() {
  thread_ = std::thread([this] { thread_main(); });
}

void Listener::join() {
  if (thread_.joinable()) thread_.join();
}

void Listener::wake() {
  if (event_fd_ >= 0) {
    uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(event_fd_, &one, sizeof(one));
  }
}

void Listener::return_connection(int fd) {
  {
    std::lock_guard<std::mutex> lock(ret_mu_);
    returned_.push_back(fd);
  }
  wake();
}

void Listener::drain_returned() {
  uint64_t junk;
  while (::read(event_fd_, &junk, sizeof(junk)) > 0) {
  }
  std::vector<int> fds;
  {
    std::lock_guard<std::mutex> lock(ret_mu_);
    fds.swap(returned_);
  }
  for (int fd : fds) add_connection(fd);
}

void Listener::add_connection(int fd) {
  auto conn = std::make_unique<Conn>();
  conn->fd = fd;
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
    ::close(fd);
    return;
  }
  conns_[fd] = std::move(conn);
}

void Listener::drop_connection(int fd) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  conns_.erase(fd);
  ::close(fd);
}

void Listener::accept_new() {
  while (true) {
    int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    add_connection(fd);
  }
}

void Listener::handle_readable(Conn* conn) {
  char buf[65536];
  while (true) {
    ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n == 0) {
      drop_connection(conn->fd);
      return;
    }
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      drop_connection(conn->fd);
      return;
    }
    size_t off = 0;
    while (off < static_cast<size_t>(n)) {
      int used = conn->parser.feed(buf + off, static_cast<size_t>(n) - off);
      if (used < 0) {
        // Malformed request: terse 400 and hang up.
        static const char k400[] =
            "HTTP/1.1 400 Bad Request\r\nContent-Length: 0\r\nConnection: "
            "close\r\n\r\n";
        [[maybe_unused]] ssize_t w =
            ::send(conn->fd, k400, sizeof(k400) - 1, MSG_NOSIGNAL);
        drop_connection(conn->fd);
        return;
      }
      off += static_cast<size_t>(used);
      if (!conn->parser.done()) continue;

      http::Request& req = conn->parser.request();
      std::string name =
          req.target.empty() || req.target[0] != '/' ? req.target
                                                     : req.target.substr(1);
      LoadedModule* mod = rt_->find_module(name);
      if (!mod) {
        std::string resp = http::serialize_response(
            404, "Not Found", {}, req.keep_alive(), "text/plain");
        [[maybe_unused]] ssize_t w =
            ::send(conn->fd, resp.data(), resp.size(), MSG_NOSIGNAL);
        if (!req.keep_alive()) {
          drop_connection(conn->fd);
          return;
        }
        conn->parser.reset();
        continue;
      }

      // Overload shedding (configurable backlog threshold) and graceful
      // drain both answer 503 without admitting a sandbox; a kept-alive
      // connection stays parked here so the client can retry.
      if (rt_->overloaded() || rt_->draining()) {
        rt_->note_shed();
        std::string resp = http::serialize_response(
            503, "Overloaded", {}, req.keep_alive(), "text/plain");
        [[maybe_unused]] ssize_t w =
            ::send(conn->fd, resp.data(), resp.size(), MSG_NOSIGNAL);
        if (!req.keep_alive()) {
          drop_connection(conn->fd);
          return;
        }
        conn->parser.reset();
        continue;
      }

      // Hand the connection to the sandbox; the worker writes the response.
      int fd = conn->fd;
      bool keep_alive = req.keep_alive();
      std::vector<uint8_t> body = std::move(req.body);
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
      conns_.erase(fd);

      std::unique_ptr<Sandbox> sb =
          Sandbox::create(&mod->module, std::move(body), fd, keep_alive);
      if (!sb) {
        rt_->note_shed();
        std::string resp = http::serialize_response(
            503, "Overloaded", {}, false, "text/plain");
        [[maybe_unused]] ssize_t w =
            ::send(fd, resp.data(), resp.size(), MSG_NOSIGNAL);
        ::close(fd);
        return;
      }
      sb->user_tag = mod;

      // Resolve limits: per-module override, else runtime default.
      const RuntimeConfig& rc = rt_->config();
      uint64_t budget = mod->limits.execution_budget_ns != 0
                            ? mod->limits.execution_budget_ns
                            : rc.execution_budget_ns;
      uint64_t deadline =
          mod->limits.deadline_ns != 0 ? mod->limits.deadline_ns
                                       : rc.deadline_ns;
      sb->set_limits(budget,
                     deadline != 0 ? sb->created_ns() + deadline : 0);

      {
        std::lock_guard<std::mutex> lock(mod->stats.mu);
        mod->stats.requests++;
        mod->stats.startup.record(sb->startup_cost_ns());
        (sb->pooled() ? mod->stats.startup_pooled : mod->stats.startup_cold)
            .record(sb->startup_cost_ns());
      }
      rt_->note_admitted();
      rt_->distributor().push(sb.release());
      return;  // fd no longer ours; remaining bytes (pipelining) unsupported
    }
  }
}

void Listener::thread_main() {
  epoll_event events[128];
  while (rt_->running()) {
    int n = ::epoll_wait(epoll_fd_, events, 128, 50);
    if (n < 0) {
      if (errno == EINTR) continue;
      SLEDGE_LOG_ERROR("listener epoll_wait failed: %s", strerror(errno));
      return;
    }
    for (int i = 0; i < n; ++i) {
      int fd = events[i].data.fd;
      if (fd == listen_fd_) {
        accept_new();
      } else if (fd == event_fd_) {
        drain_returned();
      } else {
        auto it = conns_.find(fd);
        if (it != conns_.end()) handle_readable(it->second.get());
      }
    }
  }
}

}  // namespace sledge::runtime
