#include "sledge/sandbox.hpp"

#include <signal.h>

#include <cstdio>

#include "common/log.hpp"
#include "engine/trap.hpp"

namespace sledge::runtime {

namespace {
constexpr size_t kStackSize = 512 * 1024;
constexpr size_t kGuardSize = 4096;
std::atomic<Sandbox::CreateFaultHook> g_create_fault_hook{nullptr};
}  // namespace

const char* to_string(SandboxState s) {
  switch (s) {
    case SandboxState::kAllocated: return "allocated";
    case SandboxState::kRunnable: return "runnable";
    case SandboxState::kRunning: return "running";
    case SandboxState::kBlocked: return "blocked";
    case SandboxState::kComplete: return "complete";
    case SandboxState::kFailed: return "failed";
    case SandboxState::kKilled: return "killed";
  }
  return "?";
}

void Sandbox::set_create_fault_hook(CreateFaultHook hook) {
  g_create_fault_hook.store(hook, std::memory_order_release);
}

std::unique_ptr<Sandbox> Sandbox::create(const engine::WasmModule* module,
                                         std::vector<uint8_t> request,
                                         int conn_fd, bool keep_alive) {
  if (CreateFaultHook hook = g_create_fault_hook.load(std::memory_order_acquire);
      hook && hook()) {
    return nullptr;  // injected allocation failure (tests)
  }
  Stopwatch sw;
  SandboxResourcePool& pool = SandboxResourcePool::instance();
  std::unique_ptr<Sandbox> sb(new Sandbox());
  sb->module_ = module;
  sb->env_.request = std::move(request);
  sb->conn_fd_ = conn_fd;
  sb->keep_alive_ = keep_alive;
  sb->t_created_ = now_ns();

  // Linear memory from the pool (warm regions are pre-zeroed and keep
  // their reservation + guard registration), then the instance on top of
  // it (cheap: the module is already linked/loaded).
  engine::WasmModule::MemorySpec spec = module->memory_spec();
  bool memory_pooled = !spec.has_memory;
  engine::LinearMemory memory;
  if (spec.has_memory) {
    memory = pool.acquire_memory(spec.strategy, spec.min_pages,
                                 spec.max_pages, &memory_pooled);
    if (!memory.valid()) return nullptr;
  }
  Result<engine::WasmSandbox> wasm = module->instantiate(std::move(memory));
  if (!wasm.ok()) {
    SLEDGE_LOG_ERROR("sandbox instantiate failed: %s",
                     wasm.error_message().c_str());
    return nullptr;
  }
  sb->wasm_ = wasm.take();

  // Guarded execution stack, outside linear memory (Wasm's split-stack
  // design: the C stack is unreachable from sandboxed loads/stores).
  // Pooled stacks keep their mapping, guard page, and guard registration.
  bool stack_pooled = false;
  sb->stack_ = pool.acquire_stack(kStackSize, kGuardSize, &stack_pooled);
  if (!sb->stack_) return nullptr;
  sb->pooled_ = memory_pooled && stack_pooled;

  // User-level context (the paper's ip/sp/mcontext_t triple); the storage
  // is pooled with the stack, the triple is rebuilt per request.
  ucontext_t* ctx = &sb->stack_->ctx;
  ::getcontext(ctx);
  ctx->uc_stack.ss_sp = sb->stack_->base + kGuardSize;
  ctx->uc_stack.ss_size = kStackSize;
  ctx->uc_link = nullptr;
  // Sandbox code runs with the preemption signal unblocked; the scheduler
  // keeps it blocked, so quanta only expire inside sandbox execution.
  sigdelset(&ctx->uc_sigmask, SIGALRM);
  uintptr_t p = reinterpret_cast<uintptr_t>(sb.get());
  ::makecontext(ctx, reinterpret_cast<void (*)()>(&entry_trampoline), 2,
                static_cast<unsigned>(p >> 32),
                static_cast<unsigned>(p & 0xFFFFFFFFu));

  sb->startup_cost_ns_ = sw.elapsed_ns();
  sb->set_state(SandboxState::kRunnable);
  return sb;
}

Sandbox::~Sandbox() {
  // Return resources to the pool instead of unmapping: the linear memory is
  // zeroed + decommitted on the way in (cross-tenant isolation), the stack
  // keeps its mapping and guard registration.
  SandboxResourcePool& pool = SandboxResourcePool::instance();
  pool.release_memory(wasm_.reclaim_memory());
  if (stack_) pool.release_stack(stack_);
}

void Sandbox::entry_trampoline(unsigned hi, unsigned lo) {
  uintptr_t p = (static_cast<uintptr_t>(hi) << 32) | lo;
  reinterpret_cast<Sandbox*>(p)->entry();
}

void Sandbox::entry() {
  if (t_first_run_ == 0) t_first_run_ = now_ns();
  env_.sleep_hook = [this](uint64_t ns) { sleep_yield(ns); };

  if (kill_requested()) {
    // Deadline blew before any engine state existed; nothing to unwind.
    outcome_ =
        engine::InvokeOutcome::trapped(engine::TrapCode::kDeadlineExceeded);
  } else {
    outcome_ = wasm_.call("run", {}, &env_);
  }

  t_done_ = now_ns();
  if (outcome_.trap == engine::TrapCode::kDeadlineExceeded) {
    set_state(SandboxState::kKilled);
  } else {
    set_state(outcome_.ok() ? SandboxState::kComplete : SandboxState::kFailed);
  }
  // Never returns: hand the core back to the scheduler for good.
  ::setcontext(scheduler_ctx_);
  std::fprintf(stderr, "fatal: sandbox resumed after completion\n");
  std::abort();
}

void Sandbox::dispatch(ucontext_t* scheduler_ctx) {
  scheduler_ctx_ = scheduler_ctx;
  set_state(SandboxState::kRunning);
  ++dispatch_count_;
  run_started_ns_ = now_ns();
  // The trap-unwind chain is green-thread state, not OS-thread state: park
  // the scheduler's chain and install this sandbox's for the slice. Without
  // this, round-robin preemption interleaves TrapScopes of different
  // sandboxes on one thread-local chain and unwinds into the wrong stack.
  engine::TrapFrame* sched_chain = engine::exchange_trap_chain(trap_chain_);
  ::swapcontext(scheduler_ctx, &stack_->ctx);
  trap_chain_ = engine::exchange_trap_chain(sched_chain);
  cpu_ns_ += now_ns() - run_started_ns_;
  run_started_ns_ = 0;
  // Back in the scheduler; state tells it what happened.
}

void Sandbox::sleep_yield(uint64_t ns) {
  wake_at_ns_ = now_ns() + ns;
  set_state(SandboxState::kBlocked);
  ::swapcontext(&stack_->ctx, scheduler_ctx_);
  // Resumed. A kill may have been requested while we were blocked (wall
  // deadline passing); we are inside the host call's TrapScope, so unwind.
  if (kill_requested() && engine::in_trap_scope()) {
    engine::raise_trap(engine::TrapCode::kDeadlineExceeded);
  }
}

void Sandbox::mark_killed_undispatched() {
  outcome_ =
      engine::InvokeOutcome::trapped(engine::TrapCode::kDeadlineExceeded);
  t_done_ = now_ns();
  set_state(SandboxState::kKilled);
}

}  // namespace sledge::runtime
