#include "sledge/sandbox.hpp"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "common/log.hpp"
#include "engine/trap.hpp"
#include "sledge/snapshot.hpp"
#include "sledge/worker.hpp"

using sledge::engine::SbIoError;

namespace sledge::runtime {

namespace {
constexpr size_t kStackSize = 512 * 1024;
constexpr size_t kGuardSize = 4096;
std::atomic<Sandbox::CreateFaultHook> g_create_fault_hook{nullptr};

// Transfer-buffer sizing: leave room for a same-order response after the
// 16-byte-aligned request region so typical request->response chains never
// spill to the heap vector. The reserve scales with the request (echo-shaped
// responses are the common case); 4 KiB is the floor for tiny requests with
// larger replies. A response that still overflows spills to the heap vector.
constexpr size_t kTransferRespReserve = 4096;

size_t align16(size_t n) { return (n + 15) & ~size_t{15}; }

size_t transfer_acquire_size(size_t req_len) {
  size_t req_aligned = align16(req_len);
  return req_aligned + std::max(kTransferRespReserve, req_aligned);
}

// Tenant key for zero-on-reuse: a (caller module, callee name) pair. Two
// hops of the same chain shape share buffers without scrubbing; any other
// pair forces a zero fill before handout. splitmix64 over the caller tag.
uint64_t transfer_tenant_key(const void* caller_tag, const uint8_t* name,
                             uint32_t name_len) {
  uint64_t h = reinterpret_cast<uintptr_t>(caller_tag) + 0x9e3779b97f4a7c15ull;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
  for (uint32_t i = 0; i < name_len; ++i) {
    h = (h ^ name[i]) * 0x100000001b3ull;
  }
  return h ^ (h >> 31);
}
}  // namespace

const char* to_string(SandboxState s) {
  switch (s) {
    case SandboxState::kAllocated: return "allocated";
    case SandboxState::kRunnable: return "runnable";
    case SandboxState::kRunning: return "running";
    case SandboxState::kBlocked: return "blocked";
    case SandboxState::kComplete: return "complete";
    case SandboxState::kFailed: return "failed";
    case SandboxState::kKilled: return "killed";
  }
  return "?";
}

const char* to_string(InstantiationMode m) {
  switch (m) {
    case InstantiationMode::kCold: return "cold";
    case InstantiationMode::kPooled: return "pooled";
    case InstantiationMode::kSnapshot: return "snapshot";
  }
  return "?";
}

const char* to_string(WakeKind k) {
  switch (k) {
    case WakeKind::kNone: return "none";
    case WakeKind::kTimer: return "timer";
    case WakeKind::kFdRead: return "fd_read";
    case WakeKind::kFdWrite: return "fd_write";
    case WakeKind::kChild: return "child";
  }
  return "?";
}

void Sandbox::set_create_fault_hook(CreateFaultHook hook) {
  g_create_fault_hook.store(hook, std::memory_order_release);
}

std::unique_ptr<Sandbox> Sandbox::create(const engine::WasmModule* module,
                                         std::vector<uint8_t> request,
                                         int conn_fd, bool keep_alive,
                                         InstantiationMode mode) {
  if (CreateFaultHook hook = g_create_fault_hook.load(std::memory_order_acquire);
      hook && hook()) {
    return nullptr;  // injected allocation failure (tests)
  }
  Stopwatch sw;
  SandboxResourcePool& pool = SandboxResourcePool::instance();
  std::unique_ptr<Sandbox> sb(new Sandbox());
  sb->module_ = module;
  sb->env_.request = std::move(request);
  sb->conn_fd_ = conn_fd;
  sb->keep_alive_ = keep_alive;
  sb->t_created_ = now_ns();

  engine::WasmModule::MemorySpec spec = module->memory_spec();
  bool memory_pooled = !spec.has_memory;
  bool snapshot_backed = false;
  engine::LinearMemory memory;

  // Snapshot tier: map the module's sealed memfd template MAP_PRIVATE over
  // a pooled (uncommitted) reservation — the post-start image materializes
  // copy-on-write, and globals/data/start are all skipped. Any failure
  // degrades to the pooled tier below.
  if (mode == InstantiationMode::kSnapshot && spec.has_memory) {
    const SnapshotTemplate* tmpl =
        SnapshotRegistry::instance().get_or_build(module);
    if (tmpl) {
      // Fast path: adopt a region a departing tenant parked on the template
      // (pristine COW view already remapped at release time) — zero
      // syscalls here. Otherwise map the template over a pooled
      // reservation.
      memory = SnapshotRegistry::instance().adopt_memory(module);
      bool mapped = memory.valid();
      if (mapped) {
        memory_pooled = true;
      } else {
        memory = pool.acquire_memory(spec.strategy, 0, tmpl->max_pages,
                                     &memory_pooled);
        mapped = memory.valid() &&
                 memory.map_template(tmpl->fd, tmpl->content_bytes,
                                     tmpl->max_pages);
      }
      if (mapped) {
        Result<engine::WasmSandbox> seeded =
            module->instantiate_seeded(std::move(memory), tmpl->seed);
        if (seeded.ok()) {
          sb->wasm_ = seeded.take();
          snapshot_backed = true;
          SnapshotRegistry::instance().note_hit();
        }
      } else if (memory.valid()) {
        pool.release_memory(std::move(memory));
      }
    }
  }

  if (!snapshot_backed) {
    if (mode == InstantiationMode::kSnapshot) {
      SnapshotRegistry::instance().note_miss();
    }
    // Linear memory from the pool (warm regions are pre-zeroed and keep
    // their reservation + guard registration), then the instance on top of
    // it (cheap: the module is already linked/loaded). The cold tier
    // bypasses the memory free list — a fresh reservation per request, the
    // ablation baseline (stacks still recycle; memory dominates).
    if (spec.has_memory) {
      if (mode == InstantiationMode::kCold) {
        auto fresh = engine::LinearMemory::create(spec.strategy,
                                                  spec.min_pages,
                                                  spec.max_pages);
        if (!fresh.ok()) return nullptr;
        memory = fresh.take();
        memory_pooled = false;
      } else {
        memory = pool.acquire_memory(spec.strategy, spec.min_pages,
                                     spec.max_pages, &memory_pooled);
        if (!memory.valid()) return nullptr;
      }
    }
    Result<engine::WasmSandbox> wasm = module->instantiate(std::move(memory));
    if (!wasm.ok()) {
      SLEDGE_LOG_ERROR("sandbox instantiate failed: %s",
                       wasm.error_message().c_str());
      return nullptr;
    }
    sb->wasm_ = wasm.take();
  }
  sb->snapshot_backed_ = snapshot_backed;

  // Guarded execution stack, outside linear memory (Wasm's split-stack
  // design: the C stack is unreachable from sandboxed loads/stores).
  // Pooled stacks keep their mapping, guard page, and guard registration.
  bool stack_pooled = false;
  sb->stack_ = pool.acquire_stack(kStackSize, kGuardSize, &stack_pooled);
  if (!sb->stack_) return nullptr;
  sb->pooled_ = memory_pooled && stack_pooled;

  // User-level context (the paper's ip/sp/mcontext_t triple); the storage
  // is pooled with the stack, the triple is rebuilt per request.
  ucontext_t* ctx = &sb->stack_->ctx;
  ::getcontext(ctx);
  ctx->uc_stack.ss_sp = sb->stack_->base + kGuardSize;
  ctx->uc_stack.ss_size = kStackSize;
  ctx->uc_link = nullptr;
  // Sandbox code runs with the preemption signal unblocked; the scheduler
  // keeps it blocked, so quanta only expire inside sandbox execution.
  sigdelset(&ctx->uc_sigmask, SIGALRM);
  uintptr_t p = reinterpret_cast<uintptr_t>(sb.get());
  ::makecontext(ctx, reinterpret_cast<void (*)()>(&entry_trampoline), 2,
                static_cast<unsigned>(p >> 32),
                static_cast<unsigned>(p & 0xFFFFFFFFu));

  sb->startup_cost_ns_ = sw.elapsed_ns();
  sb->set_state(SandboxState::kRunnable);
  return sb;
}

void Sandbox::adopt_request(std::vector<uint8_t> request, int conn_fd,
                            bool keep_alive, uint64_t startup_ns) {
  env_.request = std::move(request);
  conn_fd_ = conn_fd;
  keep_alive_ = keep_alive;
  // Phase accounting restarts from adoption: the build cost was paid by the
  // replenisher in the background, not by this request.
  t_created_ = now_ns();
  startup_cost_ns_ = startup_ns;
}

Sandbox::~Sandbox() {
  // Close any outbound sockets the function leaked (or was killed holding):
  // the fd table dies with the request, never with the connection pool.
  close_all_fds();
  // Return resources to the pool instead of unmapping: the linear memory is
  // zeroed + decommitted on the way in (cross-tenant isolation), the stack
  // keeps its mapping and guard registration.
  SandboxResourcePool& pool = SandboxResourcePool::instance();
  engine::LinearMemory memory = wasm_.reclaim_memory();
  // Snapshot-backed regions go back to the template's spare list with the
  // pristine COW view pre-remapped, so the next snapshot create adopts
  // them syscall-free. Falls through to the pool when the template was
  // invalidated or the spare cache is full.
  if (!(snapshot_backed_ &&
        SnapshotRegistry::instance().stash_memory(module_, &memory))) {
    pool.release_memory(std::move(memory));
  }
  if (stack_) pool.release_stack(stack_);
}

void Sandbox::close_all_fds() {
  for (int& fd : fd_table_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
}

size_t Sandbox::open_fds() const {
  size_t n = 0;
  for (int fd : fd_table_) {
    if (fd >= 0) ++n;
  }
  return n;
}

int Sandbox::os_fd_of(int32_t vfd) const {
  if (vfd < 0 || static_cast<size_t>(vfd) >= fd_table_.size()) return -1;
  return fd_table_[vfd];
}

void Sandbox::entry_trampoline(unsigned hi, unsigned lo) {
  uintptr_t p = (static_cast<uintptr_t>(hi) << 32) | lo;
  reinterpret_cast<Sandbox*>(p)->entry();
}

void Sandbox::entry() {
  worker_switch_landed();  // first-dispatch switch complete
  if (t_first_run_ == 0) t_first_run_ = now_ns();
  env_.sleep_hook = [this](uint64_t ns) { sleep_yield(ns); };
  env_.connect_hook = [this](const uint8_t* h, uint32_t l, uint32_t p) {
    return io_connect(h, l, p);
  };
  env_.send_hook = [this](int32_t fd, const uint8_t* d, uint32_t l) {
    return io_send(fd, d, l);
  };
  env_.recv_hook = [this](int32_t fd, uint8_t* b, uint32_t c) {
    return io_recv(fd, b, c);
  };
  env_.close_hook = [this](int32_t fd) { return io_close(fd); };
  env_.invoke_hook = [this](const uint8_t* n, uint32_t nl, const uint8_t* rq,
                            uint32_t rl, uint8_t* rs, uint32_t rc) {
    return io_invoke(n, nl, rq, rl, rs, rc);
  };
  env_.invoke_stream_hook = [this](const uint8_t* n, uint32_t nl,
                                   const uint8_t* rq, uint32_t rl) {
    return io_invoke_stream(n, nl, rq, rl);
  };

  if (kill_requested()) {
    // Deadline blew before any engine state existed; nothing to unwind.
    outcome_ =
        engine::InvokeOutcome::trapped(engine::TrapCode::kDeadlineExceeded);
  } else {
    outcome_ = wasm_.call("run", {}, &env_);
  }

  t_done_ = now_ns();
  if (outcome_.trap == engine::TrapCode::kDeadlineExceeded) {
    set_state(SandboxState::kKilled);
  } else {
    set_state(outcome_.ok() ? SandboxState::kComplete : SandboxState::kFailed);
  }
  // Never returns: hand the core back to the scheduler for good.
  ::setcontext(scheduler_ctx_);
  std::fprintf(stderr, "fatal: sandbox resumed after completion\n");
  std::abort();
}

void Sandbox::dispatch(ucontext_t* scheduler_ctx) {
  scheduler_ctx_ = scheduler_ctx;
  set_state(SandboxState::kRunning);
  ++dispatch_count_;
  run_started_ns_ = now_ns();
  // The trap-unwind chain is green-thread state, not OS-thread state: park
  // the scheduler's chain and install this sandbox's for the slice. Without
  // this, round-robin preemption interleaves TrapScopes of different
  // sandboxes on one thread-local chain and unwinds into the wrong stack.
  engine::TrapFrame* sched_chain = engine::exchange_trap_chain(trap_chain_);
  ::swapcontext(scheduler_ctx, &stack_->ctx);
  trap_chain_ = engine::exchange_trap_chain(sched_chain);
  cpu_ns_ += now_ns() - run_started_ns_;
  run_started_ns_ = 0;
  // Back in the scheduler; state tells it what happened.
}

void Sandbox::sleep_yield(uint64_t ns) {
  block_yield(WakeKind::kTimer, -1, now_ns() + ns);
}

void Sandbox::block_yield(WakeKind kind, int os_fd, uint64_t wake_at_ns) {
  wake_kind_ = kind;
  wake_fd_ = os_fd;
  wake_at_ns_ = wake_at_ns;
  uint64_t blocked_at = now_ns();
  set_state(SandboxState::kBlocked);
  ::swapcontext(&stack_->ctx, scheduler_ctx_);
  worker_switch_landed();  // wake-dispatch switch complete
  // Resumed (the worker's event loop observed our wake condition — or a
  // kill). Blocked time is the io_wait phase; the worker already excluded
  // it from cpu_ns by stamping slice boundaries in dispatch().
  io_wait_ns_ += now_ns() - blocked_at;
  wake_kind_ = WakeKind::kNone;
  wake_fd_ = -1;
  // A kill may have been requested while we were blocked (wall deadline
  // passing); we are inside the host call's TrapScope, so unwind.
  if (kill_requested() && engine::in_trap_scope()) {
    engine::raise_trap(engine::TrapCode::kDeadlineExceeded);
  }
}

// ---- Async host I/O (sb_* hostcalls) ----------------------------------
//
// These run on the green-thread stack. A deadline kill unwinds them with a
// longjmp (no destructors), so no frame below a potential block point may
// own heap memory: scratch buffers are fixed-size, and the sb_invoke join
// is parked in the pending_join_ member the Sandbox destructor releases.

int32_t Sandbox::io_connect(const uint8_t* host, uint32_t host_len,
                            uint32_t port) {
  if (port > 65535) return SbIoError::kSbErrConnect;
  char name[64];
  if (host_len >= sizeof(name)) return SbIoError::kSbErrConnect;
  std::memcpy(name, host, host_len);
  name[host_len] = '\0';

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  // Numeric IPv4 only (plus "localhost"): edge functions talk to sidecars
  // and peers by address; DNS would need its own async path.
  const char* target = std::strcmp(name, "localhost") == 0 ? "127.0.0.1"
                                                           : name;
  if (::inet_pton(AF_INET, target, &addr.sin_addr) != 1) {
    return SbIoError::kSbErrConnect;
  }

  // Find a free fd-table slot under the per-sandbox cap (tenant isolation:
  // one function cannot hoard the process's descriptors).
  int32_t vfd = -1;
  for (size_t i = 0; i < fd_table_.size(); ++i) {
    if (fd_table_[i] < 0) {
      vfd = static_cast<int32_t>(i);
      break;
    }
  }
  if (vfd < 0) {
    if (fd_table_.size() >= max_fds_) return SbIoError::kSbErrFdLimit;
    fd_table_.push_back(-1);
    vfd = static_cast<int32_t>(fd_table_.size() - 1);
  }

  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return SbIoError::kSbErrConnect;
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  // Park the fd in the table before any block point so a mid-connect kill
  // still closes it via the destructor sweep.
  fd_table_[vfd] = fd;

  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  // EINTR on a nonblocking connect means the attempt continues
  // asynchronously, exactly like EINPROGRESS.
  if (rc < 0 && (errno == EINPROGRESS || errno == EINTR)) {
    block_yield(WakeKind::kFdWrite, fd, 0);
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0 || err != 0) {
      rc = -1;
      errno = err;
    } else {
      rc = 0;
    }
  }
  if (rc < 0) {
    ::close(fd);
    fd_table_[vfd] = -1;
    return SbIoError::kSbErrConnect;
  }
  return vfd;
}

int32_t Sandbox::io_send(int32_t vfd, const uint8_t* data, uint32_t len) {
  int fd = os_fd_of(vfd);
  if (fd < 0) return SbIoError::kSbErrBadFd;
  uint32_t off = 0;
  while (off < len) {
    ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<uint32_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      block_yield(WakeKind::kFdWrite, fd, 0);
      continue;
    }
    return off > 0 ? static_cast<int32_t>(off) : SbIoError::kSbErrIo;
  }
  return static_cast<int32_t>(off);
}

int32_t Sandbox::io_recv(int32_t vfd, uint8_t* buf, uint32_t cap) {
  int fd = os_fd_of(vfd);
  if (fd < 0) return SbIoError::kSbErrBadFd;
  while (true) {
    ssize_t n = ::recv(fd, buf, cap, 0);
    if (n >= 0) return static_cast<int32_t>(n);  // 0 = orderly EOF
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      block_yield(WakeKind::kFdRead, fd, 0);
      continue;
    }
    return SbIoError::kSbErrIo;
  }
}

int32_t Sandbox::io_close(int32_t vfd) {
  int fd = os_fd_of(vfd);
  if (fd < 0) return SbIoError::kSbErrBadFd;
  ::close(fd);
  fd_table_[vfd] = -1;
  return 0;
}

int32_t Sandbox::io_invoke(const uint8_t* name, uint32_t name_len,
                           const uint8_t* req, uint32_t req_len,
                           uint8_t* resp, uint32_t resp_cap) {
  if (!broker_) return SbIoError::kSbErrUnsupported;
  if (invoke_depth_ + 1 > max_invoke_depth_) return SbIoError::kSbErrDepth;
  if (name_len >= 64) return SbIoError::kSbErrNoModule;

  // The join outlives any one party: held in pending_join_ (released by our
  // destructor even across a longjmp unwind) and by the child sandbox.
  pending_join_ = std::make_shared<InvokeJoin>();
  pending_join_->waiter_worker = owner_worker_;

  // Zero-copy (shm) dataplane: stage the request in a pooled transfer
  // buffer the child reads directly; its response comes back in the same
  // buffer. Acquire failure silently falls back to the copy dataplane.
  std::vector<uint8_t> request;
  if (invoke_shm_) {
    TransferBuffer* tb = SandboxResourcePool::instance().acquire_transfer(
        transfer_acquire_size(req_len),
        transfer_tenant_key(user_tag, name, name_len));
    if (tb) {
      if (req_len != 0) std::memcpy(tb->data, req, req_len);
      tb->len = req_len;
      pending_join_->xfer = std::make_shared<TransferLoan>(tb);
      pending_join_->xfer_resp_off = align16(req_len);
    }
  }
  if (!pending_join_->xfer) request.assign(req, req + req_len);

  int32_t err = 0;
  if (!broker_->invoke_child(
          this, std::string(reinterpret_cast<const char*>(name), name_len),
          std::move(request), pending_join_, &err)) {
    pending_join_.reset();
    return err;
  }
  while (!pending_join_->done.load(std::memory_order_acquire)) {
    block_yield(WakeKind::kChild, -1, 0);
  }
  int32_t status = pending_join_->status;
  if (status != 0) {
    pending_join_.reset();
    return status;
  }
  // Response location (published before the `done` release-store): the
  // transfer buffer's response region on the shm fast path, the heap
  // vector on the copy dataplane or after a sink spill.
  const uint8_t* src;
  size_t len;
  if (pending_join_->resp_in_xfer) {
    src = pending_join_->xfer->get()->data + pending_join_->xfer_resp_off;
    len = pending_join_->xfer_resp_len;
  } else {
    src = pending_join_->response.data();
    len = pending_join_->response.size();
  }
  uint32_t n = static_cast<uint32_t>(len < resp_cap ? len : resp_cap);
  if (n != 0) std::memcpy(resp, src, n);
  pending_join_.reset();  // drops the transfer loan with it
  return static_cast<int32_t>(n);
}

int32_t Sandbox::io_invoke_stream(const uint8_t* name, uint32_t name_len,
                                  const uint8_t* req, uint32_t req_len) {
  if (!broker_) return SbIoError::kSbErrUnsupported;
  if (invoke_depth_ + 1 > max_invoke_depth_) return SbIoError::kSbErrDepth;
  if (name_len >= 64) return SbIoError::kSbErrNoModule;
  // The hand-off needs a channel to give away: either our HTTP connection
  // or the upstream join we would have answered. Without one the child's
  // response would have nowhere to go.
  if (conn_fd_ < 0 && !result_join_) return SbIoError::kSbErrNoChannel;

  std::shared_ptr<TransferLoan> loan;
  std::vector<uint8_t> request;
  if (invoke_shm_) {
    TransferBuffer* tb = SandboxResourcePool::instance().acquire_transfer(
        transfer_acquire_size(req_len),
        transfer_tenant_key(user_tag, name, name_len));
    if (tb) {
      if (req_len != 0) std::memcpy(tb->data, req, req_len);
      tb->len = req_len;
      loan = std::make_shared<TransferLoan>(tb);
    }
  }
  if (!loan) request.assign(req, req + req_len);

  int32_t err = 0;
  if (!broker_->invoke_stream_child(
          this, std::string(reinterpret_cast<const char*>(name), name_len),
          std::move(request), std::move(loan), req_len, &err)) {
    return err;
  }
  // Channel transferred: we finish as a detached stage. Anything we
  // resp_write from here on is discarded at retirement.
  return 0;
}

void Sandbox::mark_killed_undispatched() {
  outcome_ =
      engine::InvokeOutcome::trapped(engine::TrapCode::kDeadlineExceeded);
  t_done_ = now_ns();
  set_state(SandboxState::kKilled);
}

}  // namespace sledge::runtime
