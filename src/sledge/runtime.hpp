// The Sledge single-process serverless runtime (paper §3.3–§3.5, §4).
//
// One listener thread accepts TCP connections, parses HTTP requests and
// instantiates sandboxes; a global work-distribution structure (Chase–Lev
// deque by default) hands them to N worker threads; each worker runs a
// preemptive round-robin scheduler over user-level sandbox contexts with a
// configurable quantum (paper default 5 ms). Request routing is by path:
// POST /<module-name>.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/histogram.hpp"
#include "common/status.hpp"
#include "engine/engine.hpp"
#include "sledge/admission.hpp"
#include "sledge/dispatcher.hpp"
#include "sledge/resource_pool.hpp"
#include "sledge/sandbox.hpp"
#include "sledge/scheduler_policy.hpp"
#include "sledge/snapshot.hpp"

namespace sledge::runtime {

class Worker;
class Listener;

// How sb_invoke / sb_invoke_stream payloads travel between parent and
// child sandboxes:
//   kCopy — request and response are copied through per-request heap
//           vectors (the PR 4 baseline; the network-shaped path).
//   kShm  — payloads ride pooled TransferBuffers: the parent writes its
//           request into a loaned buffer the child reads directly, and the
//           child's response comes back in the same buffer (CWASI-style
//           zero-copy for co-located function-to-function calls).
enum class InvokeDataplane : uint8_t { kCopy, kShm };

// Per-module dataplane selection: kInherit uses the runtime-wide
// RuntimeConfig::invoke_dataplane; kCopy/kShm pin it for chains started by
// sandboxes of that module (useful to quarantine one module onto the copy
// path, or to A/B the dataplanes inside a single runtime).
enum class InvokeDataplaneOverride : uint8_t { kInherit, kCopy, kShm };

const char* to_string(InvokeDataplane d);

struct RuntimeConfig {
  uint16_t port = 0;  // 0 = pick a free port (see Runtime::bound_port)
  int workers = 3;
  // Listener shards: N SO_REUSEPORT accept loops, each with its own epoll
  // set and connection table (the kernel hashes connections across them).
  // 0 = min(4, hardware cores).
  int num_listeners = 0;
  uint64_t quantum_us = 5000;  // paper's 5 ms time slice
  bool preemption = true;      // false = cooperative-only (ablation)
  DistPolicy policy = DistPolicy::kWorkStealing;
  // Dispatcher layer above the Distributor: how admitted sandboxes are
  // handed out across workers (work_stealing keeps `policy`'s queue
  // ablation; global_edf and sharded_module replace it).
  DispatchPolicy dispatcher = DispatchPolicy::kWorkStealing;
  // Per-worker scheduling policy over the local runnable set (the
  // cross-worker handoff above stays as configured by `policy`).
  SchedPolicy sched = SchedPolicy::kRoundRobin;
  // Sandbox resource pool (warm startup path). Applied process-wide at
  // Runtime construction; pool.enabled=false is the cold-start ablation.
  SandboxResourcePool::Config pool;
  engine::WasmModule::Config engine;  // default tier/bounds for modules
  // Startup tier for sandbox instantiation (per-module override in
  // ModuleLimits): cold = fresh mapping per request (ablation), pooled =
  // recycled zeroed memory (PR 2 warm path), snapshot = COW memfd template
  // of the post-start image (falls back to pooled when no template builds).
  InstantiationMode instantiation = InstantiationMode::kPooled;
  // Warm-pool autoscaler: a background replenisher pre-builds
  // snapshot-backed sandboxes per module, sized from the observed arrival
  // rate. Only engages for modules resolved to the snapshot tier.
  WarmPoolConfig warm_pool;

  // ---- Deadline enforcement & overload defaults (0 = unlimited) ----
  // Per-request CPU budget across preemptions; over-budget sandboxes are
  // killed and answered with 504. Requires preemption to fire mid-run.
  uint64_t execution_budget_ns = 0;
  // Wall-clock deadline measured from admission (also covers time spent
  // queued or cooperatively blocked).
  uint64_t deadline_ns = 0;
  // Admission control: when > 0, new requests are shed with 503 once this
  // many sandboxes are in flight (queued + running + blocked).
  int64_t max_pending = 0;
  // Admission policy: kQueueDepth sheds purely on the cap above;
  // kExpectedSlack adds the predicted-slack gate (503/504-early from live
  // per-module p99s) and per-tenant weighted fair shares of max_pending.
  AdmissionPolicy admission = AdmissionPolicy::kQueueDepth;
  // stop() drains in-flight sandboxes for at most this long before
  // abandoning them.
  uint64_t drain_grace_ns = 2'000'000'000;

  // ---- Async host I/O (sb_connect/sb_send/sb_recv/sb_invoke) ----
  // Per-sandbox cap on concurrently open outbound sockets (tenant
  // isolation: one function cannot exhaust the process fd table).
  int max_sandbox_fds = 8;
  // Maximum sb_invoke chain depth (top-level request = depth 0); bounds
  // fan-out loops and recursive self-invocation.
  int max_invoke_depth = 4;
  // Inter-function payload path: zero-copy pooled transfer buffers (kShm,
  // default) or the per-request vector copies of the baseline (kCopy).
  InvokeDataplane invoke_dataplane = InvokeDataplane::kShm;
  // Prefer placing sb_invoke children on the parent's worker when its
  // runnable backlog has slack (warm caches, zero-hop join wake). Off =
  // always use the configured dispatcher's normal placement.
  bool invoke_locality = true;

  // ---- Observability plane ----
  // Serve GET /admin/stats (JSON) and GET /admin/metrics (Prometheus text)
  // from the listener thread, off lock-free/briefly-locked snapshots.
  bool admin_endpoint = true;
  // Structured access log: one JSON line per completed function request
  // (module, status, bytes, phase breakdown, worker id, dispatch/preempt
  // counts). Empty = disabled. Workers buffer lines and flush off the hot
  // path, so the log is rate-safe under load.
  std::string access_log_path;
};

// Per-module startup-tier selection: kInherit follows the runtime-wide
// RuntimeConfig::instantiation; the rest pin the tier for this module
// (in-process A/B of cold vs pooled vs snapshot instantiation).
enum class InstantiationOverride : uint8_t {
  kInherit,
  kCold,
  kPooled,
  kSnapshot,
};

// Per-module overrides for the RuntimeConfig-wide limits (0 = inherit).
struct ModuleLimits {
  uint64_t execution_budget_ns = 0;
  uint64_t deadline_ns = 0;
  // Weighted fair share of the admission window (admission = slack only);
  // 0 inherits the default weight of 1.
  uint32_t tenant_weight = 0;
  // Inter-function dataplane for chains this module's sandboxes start.
  InvokeDataplaneOverride invoke_dataplane = InvokeDataplaneOverride::kInherit;
  // Startup tier for this module's sandboxes.
  InstantiationOverride instantiation = InstantiationOverride::kInherit;
};

struct ModuleStats {
  std::mutex mu;
  uint64_t requests = 0;
  uint64_t failures = 0;
  uint64_t kills = 0;  // deadline/budget terminations (504s)
  uint64_t shed = 0;   // admission 503s (depth / fair share / queue slack)
  uint64_t shed_deadline = 0;  // admission 504-earlys (unmeetable deadline)
  uint64_t preemptions = 0;       // quantum expiries across all requests
  uint64_t response_bytes = 0;    // HTTP bytes written (incl. headers)
  // Inter-function dataplane: children of this module placed on their
  // parent's worker (locality hint honored at inject), and children whose
  // request rode a zero-copy transfer buffer instead of a heap copy.
  uint64_t invoke_local = 0;
  uint64_t invoke_zerocopy = 0;
  LatencyHistogram end_to_end;  // sandbox creation -> completion
  LatencyHistogram startup;     // sandbox allocation cost (all requests)
  // Startup-tier split of `startup`: snapshot-backed starts (COW template
  // mapping), warm starts (every resource off a pool free list), and starts
  // that paid at least one fresh allocation.
  LatencyHistogram startup_pooled;
  LatencyHistogram startup_cold;
  LatencyHistogram startup_snapshot;
  // Phase breakdown (paper §5's latency splits, live instead of post-hoc):
  // admission->first-dispatch wait, CPU consumed across slices, and
  // response flush (completion -> last byte handed to the kernel).
  LatencyHistogram queue_wait;
  LatencyHistogram exec_cpu;
  LatencyHistogram response_write;
  // Wall time spent blocked on I/O wake conditions (outbound sockets,
  // sleeps, child invocations) — the overlap the event loop buys.
  LatencyHistogram io_wait;
  // sb_invoke child hand-off: admission (parent hostcall) -> first dispatch
  // on a worker. The latency the locality hint exists to shrink.
  LatencyHistogram invoke_handoff;
  // Sliding-window queue_wait/exec_cpu p99 predictor feeding expected-slack
  // admission (record() under `mu`; reads are lock-free).
  SlackPredictor predictor;
};

struct LoadedModule {
  std::string name;
  engine::WasmModule module;
  ModuleLimits limits;
  ModuleStats stats;
  // In-flight slots this module holds (admitted, not yet retired) — the
  // fair-share accounting input. Touched by listener and workers.
  std::atomic<int64_t> inflight{0};
  // Pre-built snapshot-backed sandboxes + the arrival-rate estimator that
  // sizes the pool (see snapshot.hpp; filled by the replenisher thread).
  WarmPool warm_pool;

  // Out of line: drops the module's snapshot template on unload so a
  // reloaded module can never instantiate from a stale image.
  ~LoadedModule();
};

class Runtime : public InvokeBroker {
 public:
  explicit Runtime(RuntimeConfig config);
  ~Runtime() override;

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  // Heavyweight module registration (decode/validate/AoT-compile/dlopen);
  // never on the request path. Optional per-module engine and limit
  // overrides (ModuleLimits fields left 0 inherit the RuntimeConfig).
  Status register_module(const std::string& name,
                         const std::vector<uint8_t>& wasm_bytes);
  Status register_module(const std::string& name,
                         const std::vector<uint8_t>& wasm_bytes,
                         const engine::WasmModule::Config& engine_config);
  Status register_module(const std::string& name,
                         const std::vector<uint8_t>& wasm_bytes,
                         const ModuleLimits& limits);
  Status register_module(const std::string& name,
                         const std::vector<uint8_t>& wasm_bytes,
                         const engine::WasmModule::Config& engine_config,
                         const ModuleLimits& limits);

  // Starts the listener and worker threads. Modules can still be registered
  // afterwards, but typically are not (the paper loads modules at startup).
  Status start();
  void stop();

  uint16_t bound_port() const { return bound_port_; }
  LoadedModule* find_module(const std::string& name);
  // Replaces a registered module's limit overrides (deadline, budget,
  // tenant weight). Quiescent-use only: callers must ensure no request for
  // the module is in flight (tests warm the slack predictor under one set
  // of limits, then tighten the deadline).
  Status update_module_limits(const std::string& name,
                              const ModuleLimits& limits);

  // Resolved startup tier for `mod`: the per-module override when set, the
  // runtime-wide config otherwise.
  InstantiationMode module_instantiation(const LoadedModule* mod) const {
    switch (mod->limits.instantiation) {
      case InstantiationOverride::kCold:
        return InstantiationMode::kCold;
      case InstantiationOverride::kPooled:
        return InstantiationMode::kPooled;
      case InstantiationOverride::kSnapshot:
        return InstantiationMode::kSnapshot;
      case InstantiationOverride::kInherit:
        break;
    }
    return config_.instantiation;
  }

  // Admission-path sandbox creation, shared by the listener shards and the
  // invoke broker: notes the arrival for the warm-pool autoscaler, adopts a
  // pre-built sandbox from the module's warm pool when one is ready, and
  // otherwise builds at the module's resolved tier. nullptr = resource
  // exhaustion (the caller sheds with 503 / kSbErrOverload).
  std::unique_ptr<Sandbox> create_sandbox(LoadedModule* mod,
                                          std::vector<uint8_t> request,
                                          int conn_fd, bool keep_alive);

  // Resolved dataplane for chains started by `mod`'s sandboxes: the
  // per-module override when set, the runtime-wide config otherwise.
  bool module_invoke_shm(const LoadedModule* mod) const {
    switch (mod->limits.invoke_dataplane) {
      case InvokeDataplaneOverride::kCopy:
        return false;
      case InvokeDataplaneOverride::kShm:
        return true;
      case InvokeDataplaneOverride::kInherit:
        break;
    }
    return config_.invoke_dataplane == InvokeDataplane::kShm;
  }

  const RuntimeConfig& config() const { return config_; }
  Dispatcher& dispatcher() { return *dispatcher_; }
  bool running() const { return running_.load(std::memory_order_acquire); }
  // True while stop() is letting in-flight sandboxes finish; the listener
  // sheds new requests with 503 and workers exit once dry.
  bool draining() const { return draining_.load(std::memory_order_acquire); }

  // Worker -> listener: hand a kept-alive connection back after a response.
  // `shard` is the owning listener shard (Sandbox::conn_shard) — each shard
  // has its own epoll set and parked-Conn table, so the fd must go home.
  // `gen` is the loan generation (Sandbox::conn_gen), checked by the shard
  // so messages about a recycled fd number cannot touch a newer loan.
  void return_connection(int fd, int shard, uint64_t gen);
  // Worker -> listener: a loaned connection fd was closed worker-side; the
  // owning shard must discard any parked state (e.g. stashed pipelined
  // bytes) it still holds for that fd.
  void forget_connection(int fd, int shard, uint64_t gen);
  // Resolved shard count (config.num_listeners, 0 -> min(4, cores)).
  int num_listeners() const;

  // ---- Async host I/O (InvokeBroker) ----
  // sb_invoke: admits a child sandbox of module `name` through the normal
  // dispatch path (depth/limit checks happen in the hostcall). Called from
  // worker threads.
  bool invoke_child(Sandbox* parent, const std::string& name,
                    std::vector<uint8_t> request,
                    std::shared_ptr<InvokeJoin> join, int32_t* err) override;
  // sb_invoke_stream: admits a child that inherits the parent's response
  // channel (HTTP connection or upstream join) instead of rendezvousing —
  // pipelined chains pay one hand-off per stage, not a join per stage.
  bool invoke_stream_child(Sandbox* parent, const std::string& name,
                           std::vector<uint8_t> request,
                           std::shared_ptr<TransferLoan> loan, size_t req_len,
                           int32_t* err) override;
  // Pings one worker's (or every worker's) event loop: new injected work,
  // child completion, or stop. Out-of-range index = no-op.
  void notify_worker(int index);
  void notify_workers();

  // Worker -> runtime: per-module latency/failure/kill accounting. Also
  // retires the sandbox from the in-flight count.
  void record_completion(Sandbox* sb, SandboxState final_state);
  // Worker -> runtime: response flush finished for a request of `mod`
  // (`write_ns` = completion -> last byte accepted by the kernel).
  void record_response_write(LoadedModule* mod, uint64_t write_ns,
                             size_t bytes);

  // ---- Structured access log (one JSON line per function request) ----
  bool access_log_enabled() const { return access_log_fd_ >= 0; }
  // Appends a pre-formatted block of lines (workers buffer and flush off
  // the hot path; a single O_APPEND write keeps lines whole).
  void access_log_write(const std::string& block);

  // ---- Admission control ----
  // The full admit decision for one request of `mod` (global depth, fair
  // share, expected slack). Listener thread and worker threads (children).
  AdmitVerdict admission_check(const LoadedModule* mod) const;
  const AdmissionController& admission() const { return admission_; }
  // Sum of tenant weights over registered modules (fair-share denominator).
  uint64_t total_weight() const {
    return total_weight_.load(std::memory_order_acquire);
  }

  // ---- In-flight accounting (admission control + graceful drain) ----
  void note_admitted(LoadedModule* mod) {
    inflight_.fetch_add(1, std::memory_order_acq_rel);
    if (mod) mod->inflight.fetch_add(1, std::memory_order_acq_rel);
  }
  void note_retired(LoadedModule* mod) {
    inflight_.fetch_sub(1, std::memory_order_acq_rel);
    if (mod) mod->inflight.fetch_sub(1, std::memory_order_acq_rel);
  }
  void note_shed(LoadedModule* mod) {
    shed_.fetch_add(1, std::memory_order_relaxed);
    if (mod) {
      std::lock_guard<std::mutex> lock(mod->stats.mu);
      ++mod->stats.shed;
    }
  }
  // 504-early: deadline unmeetable per the predictor; no sandbox was built.
  void note_shed_deadline(LoadedModule* mod) {
    shed_deadline_.fetch_add(1, std::memory_order_relaxed);
    if (mod) {
      std::lock_guard<std::mutex> lock(mod->stats.mu);
      ++mod->stats.shed_deadline;
    }
  }
  void note_write_queued() {
    pending_writes_.fetch_add(1, std::memory_order_acq_rel);
  }
  void note_write_done() {
    pending_writes_.fetch_sub(1, std::memory_order_acq_rel);
  }
  int64_t inflight() const {
    return inflight_.load(std::memory_order_acquire);
  }
  bool overloaded() const {
    return config_.max_pending > 0 && inflight() >= config_.max_pending;
  }

  // Aggregate counters (summed over workers on demand).
  struct Totals {
    uint64_t completed = 0;
    uint64_t failed = 0;
    uint64_t killed = 0;   // deadline/budget terminations (504)
    uint64_t drained = 0;  // abandoned at shutdown after the grace period
    uint64_t shed = 0;     // rejected with 503 (overload or draining)
    uint64_t shed_deadline = 0;  // rejected 504-early (slack admission)
    uint64_t preemptions = 0;
    uint64_t steals = 0;
    uint64_t pool_hits = 0;    // warm starts (all resources pooled)
    uint64_t pool_misses = 0;  // cold starts
    uint64_t blocked = 0;      // sandboxes parked on an I/O wake condition
    uint64_t woken = 0;        // wakes delivered by worker event loops
    uint64_t invokes = 0;      // child sandboxes admitted via sb_invoke
    uint64_t accepted = 0;       // connections accepted (all shards)
    uint64_t accept_errors = 0;  // failed accepts incl. EMFILE sheds
  };
  Totals totals() const;

  // ---- Live stats snapshots (the /admin observability plane) ----
  //
  // Consistency model: worker counters are lock-free atomic reads; module
  // histograms are digested under that module's mutex one module at a time
  // (no global pause, so counters from different modules may be skewed by
  // in-flight requests — each counter is individually monotone).
  struct ModuleSnapshot {
    std::string name;
    uint64_t requests = 0;
    uint64_t failures = 0;
    uint64_t kills = 0;
    uint64_t shed = 0;
    uint64_t shed_deadline = 0;
    uint64_t preemptions = 0;
    uint64_t response_bytes = 0;
    uint64_t invoke_local = 0;
    uint64_t invoke_zerocopy = 0;
    int64_t inflight = 0;
    uint32_t tenant_weight = 1;
    // Live predictor state (what the admission gate sees).
    uint64_t predicted_queue_p99_ns = 0;
    uint64_t predicted_exec_p99_ns = 0;
    // Warm-pool autoscaler state (live gauge reads; hits/refills monotone).
    uint64_t warm_hits = 0;
    uint64_t warm_refills = 0;
    uint64_t warm_size = 0;
    int warm_target = 0;
    LatencyHistogram::Summary end_to_end;
    LatencyHistogram::Summary startup;
    LatencyHistogram::Summary startup_pooled;
    LatencyHistogram::Summary startup_cold;
    LatencyHistogram::Summary startup_snapshot;
    LatencyHistogram::Summary queue_wait;
    LatencyHistogram::Summary exec_cpu;
    LatencyHistogram::Summary response_write;
    LatencyHistogram::Summary io_wait;
    LatencyHistogram::Summary invoke_handoff;
  };
  struct WorkerSnapshot {
    int id = 0;
    uint64_t dispatches = 0;
    uint64_t preemptions = 0;
    uint64_t steals = 0;
    uint64_t completed = 0;
    uint64_t failed = 0;
    uint64_t killed = 0;
    uint64_t blocked = 0;
    uint64_t woken = 0;
  };
  struct ListenerSnapshot {
    int id = 0;
    uint64_t accepted = 0;
    uint64_t accept_errors = 0;
    int64_t open_conns = 0;    // in this shard's epoll set
    int64_t loaned_conns = 0;  // parked, fd owned by a worker
  };
  struct StatsSnapshot {
    uint64_t uptime_ns = 0;
    int64_t inflight = 0;
    Totals totals;
    std::vector<ListenerSnapshot> listeners;
    std::vector<WorkerSnapshot> workers;
    std::vector<ModuleSnapshot> modules;
  };
  StatsSnapshot snapshot() const;

  // JSON (`GET /admin/stats`) and Prometheus text exposition
  // (`GET /admin/metrics`) renderings of snapshot().
  std::string stats_json() const;
  std::string stats_prometheus() const;

  std::string stats_report() const;

 private:
  friend class Worker;
  friend class Listener;

  // Shared front half of sb_invoke / sb_invoke_stream admission: resolves
  // the module and applies the same admission control as listener requests.
  // nullptr = shed (err set); counters already recorded.
  LoadedModule* admit_invoke_module(const std::string& name, int32_t* err);
  // Budget/deadline clipping + I/O config + dataplane flags for an admitted
  // invoke child.
  void configure_invoke_child(Sandbox* parent, LoadedModule* mod,
                              Sandbox* child);
  // Back half: stats, locality-hinted dispatch, worker notification.
  void place_invoke_child(Sandbox* parent, LoadedModule* mod,
                          std::unique_ptr<Sandbox> child, bool zerocopy);

  // Warm-pool replenisher: a background thread that periodically sizes each
  // snapshot-tier module's warm pool from its arrival-rate estimator and
  // pre-builds sandboxes up to the target (decaying idle modules to zero).
  void replenisher_main();

  RuntimeConfig config_;
  std::map<std::string, std::unique_ptr<LoadedModule>> modules_;
  std::unique_ptr<Dispatcher> dispatcher_;
  AdmissionController admission_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::unique_ptr<Listener>> listeners_;
  std::thread replenisher_;
  std::atomic<bool> replenish_run_{false};
  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};
  std::atomic<int64_t> inflight_{0};       // admitted, not yet retired
  std::atomic<int64_t> pending_writes_{0}; // responses not yet flushed
  std::atomic<uint64_t> shed_{0};          // 503s (overload / draining)
  std::atomic<uint64_t> shed_deadline_{0}; // 504-earlys (slack admission)
  std::atomic<uint64_t> total_weight_{0};  // sum of module tenant weights
  std::atomic<uint64_t> invokes_{0};       // sb_invoke children admitted
  uint16_t bound_port_ = 0;
  uint64_t start_ns_ = 0;  // stamped by start(); uptime anchor
  int access_log_fd_ = -1;
  Totals retired_totals_;  // accumulated from workers at stop()
};

// Runs a sandbox to completion on the calling thread (no server needed):
// the unit-test / churn-benchmark path. Handles cooperative blocking.
Status run_sandbox_inline(Sandbox* sandbox);

}  // namespace sledge::runtime
