#include "sledge/snapshot.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <cmath>
#include <cstring>

#include "common/log.hpp"

namespace sledge::runtime {

namespace {
std::atomic<SnapshotRegistry::MemfdFaultHook> g_memfd_fault_hook{nullptr};

// Sealed memfd holding `bytes` of `src`. -1 on any failure (no memfd
// support, truncate/write/seal failure) — callers degrade to pooled.
int build_sealed_memfd(const char* name, const uint8_t* src, uint64_t bytes) {
  if (SnapshotRegistry::MemfdFaultHook hook =
          g_memfd_fault_hook.load(std::memory_order_acquire);
      hook && hook()) {
    return -1;  // injected "kernel lacks memfd_create" (tests)
  }
  int fd = ::memfd_create(name, MFD_CLOEXEC | MFD_ALLOW_SEALING);
  if (fd < 0) return -1;
  if (::ftruncate(fd, static_cast<off_t>(bytes)) != 0) {
    ::close(fd);
    return -1;
  }
  uint64_t off = 0;
  while (off < bytes) {
    ssize_t n = ::pwrite(fd, src + off, bytes - off, static_cast<off_t>(off));
    if (n <= 0) {
      ::close(fd);
      return -1;
    }
    off += static_cast<uint64_t>(n);
  }
  // Seal the image: instances map it MAP_PRIVATE, and nothing may ever
  // change the template after publication (defense in depth on top of the
  // registry handing out const pointers only).
  if (::fcntl(fd, F_ADD_SEALS,
              F_SEAL_SHRINK | F_SEAL_GROW | F_SEAL_WRITE | F_SEAL_SEAL) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}
}  // namespace

SnapshotTemplate::~SnapshotTemplate() {
  if (fd >= 0) ::close(fd);
}

SnapshotRegistry& SnapshotRegistry::instance() {
  static SnapshotRegistry* registry = new SnapshotRegistry();
  return *registry;
}

void SnapshotRegistry::set_memfd_fault_hook(MemfdFaultHook hook) {
  g_memfd_fault_hook.store(hook, std::memory_order_release);
}

const SnapshotTemplate* SnapshotRegistry::get_or_build(
    const engine::WasmModule* module) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = templates_.find(module);
  if (it != templates_.end()) return it->second.get();
  if (failed_.count(module)) return nullptr;

  // Build once, under the lock: one cold instantiation (start function and
  // data segments run into a throwaway memory) + one memfd write. Failures
  // are remembered so a broken module cannot trigger a per-request rebuild
  // storm — it just stays on the pooled tier.
  auto fail = [&]() -> const SnapshotTemplate* {
    failed_.insert(module);
    build_failures_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  };

  engine::WasmModule::MemorySpec spec = module->memory_spec();
  if (!spec.has_memory) return fail();  // nothing to template

  Result<engine::WasmSandbox> settled = module->instantiate();
  if (!settled.ok()) {
    SLEDGE_LOG_ERROR("snapshot build: instantiate failed: %s",
                     settled.error_message().c_str());
    return fail();
  }
  const engine::LinearMemory* mem = settled.value().memory();
  if (!mem || mem->size_bytes() == 0) return fail();

  auto tmpl = std::make_unique<SnapshotTemplate>();
  tmpl->content_bytes = mem->size_bytes();
  tmpl->max_pages = mem->max_pages();
  tmpl->fd = build_sealed_memfd("sledge-snap", mem->base(),
                                tmpl->content_bytes);
  if (tmpl->fd < 0) return fail();
  tmpl->seed = module->capture_seed(settled.value());

  builds_.fetch_add(1, std::memory_order_relaxed);
  const SnapshotTemplate* out = tmpl.get();
  templates_.emplace(module, std::move(tmpl));
  return out;
}

void SnapshotRegistry::invalidate(const engine::WasmModule* module) {
  std::lock_guard<std::mutex> lock(mu_);
  templates_.erase(module);
  failed_.erase(module);
}

void SnapshotRegistry::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  templates_.clear();
  failed_.clear();
}

engine::LinearMemory SnapshotRegistry::adopt_memory(
    const engine::WasmModule* module) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = templates_.find(module);
  if (it == templates_.end() || it->second->spares.empty()) {
    return engine::LinearMemory();
  }
  engine::LinearMemory mem = std::move(it->second->spares.back());
  it->second->spares.pop_back();
  return mem;
}

bool SnapshotRegistry::stash_memory(const engine::WasmModule* module,
                                    engine::LinearMemory* memory) {
  // Cap on parked regions per template; beyond it the release path falls
  // back to the ordinary resource pool.
  static constexpr size_t kMaxSpares = 32;
  if (!memory || !memory->valid() || memory->file_mapped_bytes() == 0) {
    return false;
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = templates_.find(module);
  if (it == templates_.end()) return false;  // invalidated: image is stale
  SnapshotTemplate& t = *it->second;
  if (t.spares.size() >= kMaxSpares) return false;
  if (!memory->remap_template(t.fd)) return false;
  t.spares.push_back(std::move(*memory));
  return true;
}

SnapshotRegistry::Counters SnapshotRegistry::counters() const {
  Counters c;
  c.hits = hits_.load(std::memory_order_relaxed);
  c.misses = misses_.load(std::memory_order_relaxed);
  c.builds = builds_.load(std::memory_order_relaxed);
  c.build_failures = build_failures_.load(std::memory_order_relaxed);
  return c;
}

void SnapshotRegistry::reset_counters() {
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  builds_.store(0, std::memory_order_relaxed);
  build_failures_.store(0, std::memory_order_relaxed);
}

int warm_pool_target(double rate_per_sec, uint64_t idle_ns,
                     const WarmPoolConfig& config) {
  if (!config.enabled || config.max_per_module <= 0) return 0;
  if (idle_ns > config.idle_decay_us * 1000) return 0;
  if (rate_per_sec <= 0.0) return 0;
  double interval_s =
      static_cast<double>(config.replenish_interval_us) / 1e6;
  double want = std::ceil(rate_per_sec * interval_s * config.headroom);
  if (want < 0.0) want = 0.0;
  if (want > static_cast<double>(config.max_per_module)) {
    want = static_cast<double>(config.max_per_module);
  }
  return static_cast<int>(want);
}

}  // namespace sledge::runtime
