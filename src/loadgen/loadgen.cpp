#include "loadgen/loadgen.hpp"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <mutex>
#include <thread>

#include "common/clock.hpp"
#include "http/http.hpp"

namespace sledge::loadgen {

namespace {

int connect_to(const std::string& host, uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return -1;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

bool send_all(int fd, const char* data, size_t len) {
  size_t off = 0;
  while (off < len) {
    ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

// Minimal HTTP/1.1 response reader: status line + headers + Content-Length
// body. Returns false on connection error or malformed response.
bool read_response(int fd, int* status, std::vector<uint8_t>* body,
                   bool* keep_alive) {
  std::string head;
  std::vector<uint8_t> pending;
  char buf[65536];
  size_t header_end = std::string::npos;
  while (header_end == std::string::npos) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    head.append(buf, static_cast<size_t>(n));
    header_end = head.find("\r\n\r\n");
    if (head.size() > 64 * 1024 && header_end == std::string::npos) {
      return false;
    }
  }
  std::string headers = head.substr(0, header_end);
  pending.assign(head.begin() + static_cast<long>(header_end) + 4, head.end());

  // status line: HTTP/1.1 NNN reason
  if (headers.size() < 12 || headers.compare(0, 5, "HTTP/") != 0) return false;
  *status = std::atoi(headers.c_str() + 9);

  size_t content_length = 0;
  {
    std::string lower;
    lower.reserve(headers.size());
    for (char c : headers) {
      lower += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    size_t pos = lower.find("content-length:");
    if (pos != std::string::npos) {
      content_length =
          static_cast<size_t>(std::atoll(lower.c_str() + pos + 15));
    }
    *keep_alive = lower.find("connection: close") == std::string::npos;
  }

  body->clear();
  body->reserve(content_length);
  body->insert(body->end(), pending.begin(), pending.end());
  while (body->size() < content_length) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    body->insert(body->end(), buf, buf + n);
  }
  return body->size() == content_length;
}

}  // namespace

double schedule_rate_at(const ArrivalSchedule& schedule, double t_s) {
  double rate = schedule.base_rps;
  if (schedule.diurnal_amplitude > 0.0 && schedule.diurnal_period_s > 0.0) {
    rate *= 1.0 + schedule.diurnal_amplitude *
                      std::sin(2.0 * M_PI * t_s / schedule.diurnal_period_s);
  }
  if (schedule.burst_every_s > 0.0 && schedule.burst_len_s > 0.0 &&
      schedule.burst_multiplier > 1.0) {
    if (std::fmod(t_s, schedule.burst_every_s) < schedule.burst_len_s) {
      rate *= schedule.burst_multiplier;
    }
  }
  return rate < 0.1 ? 0.1 : rate;
}

std::vector<double> schedule_arrival_times(const ArrivalSchedule& schedule,
                                           uint64_t n) {
  std::vector<double> out;
  out.reserve(n);
  double t = 0.0;
  for (uint64_t i = 0; i < n; ++i) {
    // Inter-arrival gap from the rate at the *previous* arrival: the
    // discrete analogue of a time-varying Poisson mean, deterministic so
    // runs (and tests) are reproducible.
    t += 1.0 / schedule_rate_at(schedule, t);
    out.push_back(t);
  }
  return out;
}

Result<std::vector<uint8_t>> single_request(const std::string& host,
                                            uint16_t port,
                                            const std::string& path,
                                            const std::vector<uint8_t>& body,
                                            int* status_out) {
  int fd = connect_to(host, port);
  if (fd < 0) return Result<std::vector<uint8_t>>::error("connect failed");
  std::string req = http::serialize_request("POST", path, body, false);
  if (!send_all(fd, req.data(), req.size())) {
    ::close(fd);
    return Result<std::vector<uint8_t>>::error("send failed");
  }
  int status = 0;
  std::vector<uint8_t> resp;
  bool keep_alive = false;
  bool ok = read_response(fd, &status, &resp, &keep_alive);
  ::close(fd);
  if (!ok) return Result<std::vector<uint8_t>>::error("bad response");
  if (status_out) *status_out = status;
  return Result<std::vector<uint8_t>>(std::move(resp));
}

Result<std::string> http_get(const std::string& host, uint16_t port,
                             const std::string& path, int* status_out) {
  int fd = connect_to(host, port);
  if (fd < 0) return Result<std::string>::error("connect failed");
  std::string req = http::serialize_request("GET", path, {}, false);
  if (!send_all(fd, req.data(), req.size())) {
    ::close(fd);
    return Result<std::string>::error("send failed");
  }
  int status = 0;
  std::vector<uint8_t> resp;
  bool keep_alive = false;
  bool ok = read_response(fd, &status, &resp, &keep_alive);
  ::close(fd);
  if (!ok) return Result<std::string>::error("bad response");
  if (status_out) *status_out = status;
  if (status < 200 || status >= 300) {
    return Result<std::string>::error("status " + std::to_string(status));
  }
  return Result<std::string>(std::string(resp.begin(), resp.end()));
}

Result<Report> run_load(const Options& options) {
  if (options.concurrency < 1 || options.total_requests == 0) {
    return Result<Report>::error("bad loadgen options");
  }

  std::atomic<uint64_t> issued{0};
  std::atomic<uint64_t> ok_count{0};
  std::atomic<uint64_t> err_count{0};
  std::mutex merge_mu;
  LatencyHistogram merged;
  std::map<int, uint64_t> merged_statuses;

  std::string request_bytes = http::serialize_request(
      "POST", options.path, options.body, options.keep_alive);

  // Open-loop mode: precompute the deterministic arrival offsets; clients
  // sleep until each ticket's scheduled time and measure latency from it,
  // so a slow server shows up as latency instead of a lower offered rate.
  std::vector<double> arrivals;
  if (options.schedule.enabled) {
    arrivals = schedule_arrival_times(options.schedule,
                                      options.total_requests);
  }
  uint64_t t_start = 0;  // schedule epoch; set when the clock starts below

  auto client = [&]() {
    LatencyHistogram local;
    std::map<int, uint64_t> local_statuses;
    int fd = -1;
    while (true) {
      uint64_t ticket = issued.fetch_add(1, std::memory_order_relaxed);
      if (ticket >= options.total_requests) break;

      uint64_t t0 = now_ns();
      if (!arrivals.empty()) {
        uint64_t due =
            t_start + static_cast<uint64_t>(arrivals[ticket] * 1e9);
        while (true) {
          uint64_t now = now_ns();
          if (now >= due) break;
          uint64_t gap = due - now;
          ::usleep(static_cast<useconds_t>(
              gap > 1'000'000 ? 1000 : gap / 1000 + 1));
        }
        t0 = due;
      }
      bool success = false;
      int observed = 0;  // 0 = no HTTP response at all
      for (int attempt = 0; attempt < 2 && !success; ++attempt) {
        if (fd < 0) {
          fd = connect_to(options.host, options.port);
          if (fd < 0) break;
        }
        int status = 0;
        std::vector<uint8_t> body;
        bool keep = false;
        if (send_all(fd, request_bytes.data(), request_bytes.size()) &&
            read_response(fd, &status, &body, &keep)) {
          observed = status;
          success = status == 200 &&
                    (options.expect_body.empty() ||
                     body == options.expect_body);
          if (!keep || !options.keep_alive) {
            ::close(fd);
            fd = -1;
          }
          break;  // got a response; don't retry
        }
        // Connection died (e.g. server rotated it): reconnect once.
        ::close(fd);
        fd = -1;
      }
      local_statuses[observed]++;
      if (success) {
        local.record(now_ns() - t0);
        ok_count.fetch_add(1, std::memory_order_relaxed);
      } else {
        err_count.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (fd >= 0) ::close(fd);
    std::lock_guard<std::mutex> lock(merge_mu);
    merged.merge(local);
    for (const auto& [status, n] : local_statuses) {
      merged_statuses[status] += n;
    }
  };

  Stopwatch sw;
  t_start = now_ns();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(options.concurrency));
  for (int i = 0; i < options.concurrency; ++i) {
    threads.emplace_back(client);
  }
  for (std::thread& t : threads) t.join();

  Report report;
  report.duration_s = static_cast<double>(sw.elapsed_ns()) / 1e9;
  report.ok = ok_count.load();
  report.errors = err_count.load();
  report.latency = std::move(merged);
  report.status_counts = std::move(merged_statuses);
  report.throughput_rps =
      report.duration_s > 0 ? static_cast<double>(report.ok) / report.duration_s
                            : 0;
  if (!options.scrape_path.empty()) {
    auto stats = http_get(options.host, options.port, options.scrape_path);
    if (stats.ok()) report.server_stats = stats.take();
  }
  return Result<Report>(std::move(report));
}

}  // namespace sledge::loadgen
