// Closed-loop HTTP load generator (Apache Bench stand-in): N concurrent
// connections, each issuing requests back-to-back until the total request
// budget is exhausted; reports throughput and the average/p99 latencies the
// paper's figures plot.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/histogram.hpp"
#include "common/status.hpp"

namespace sledge::loadgen {

// Open-loop arrival process: a base rate modulated by a sinusoidal diurnal
// cycle and periodic burst spikes (the edge traffic shapes the warm-pool
// autoscaler is sized against). Fully deterministic — arrival times follow
// t += 1/rate(t) — so tests can assert the schedule math exactly.
struct ArrivalSchedule {
  bool enabled = false;  // false = closed-loop back-to-back clients
  double base_rps = 100.0;
  // rate(t) *= 1 + amplitude * sin(2*pi*t / period): 0 disables.
  double diurnal_amplitude = 0.0;  // fraction of base, [0, 1)
  double diurnal_period_s = 60.0;
  // Every burst_every_s seconds the rate is multiplied by burst_multiplier
  // for burst_len_s seconds (burst_every_s = 0 disables).
  double burst_multiplier = 1.0;
  double burst_every_s = 0.0;
  double burst_len_s = 0.0;
};

// Instantaneous target arrival rate at time t (seconds since load start),
// floored at 0.1 rps so a deep diurnal trough cannot stall the schedule.
double schedule_rate_at(const ArrivalSchedule& schedule, double t_s);

// The first n arrival offsets (seconds since load start) of the schedule.
std::vector<double> schedule_arrival_times(const ArrivalSchedule& schedule,
                                           uint64_t n);

struct Options {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  std::string path = "/ping";
  std::vector<uint8_t> body;
  int concurrency = 10;
  uint64_t total_requests = 1000;
  bool keep_alive = true;
  // Treat a 200 with this exact body as success when non-empty.
  std::vector<uint8_t> expect_body;
  // When non-empty (e.g. "/admin/stats"), GET this path once the load
  // phase finishes and store the body in Report::server_stats, so benches
  // can print server-side phase breakdowns next to client-side latency.
  std::string scrape_path;
  // When schedule.enabled, clients pace requests open-loop to the schedule
  // instead of issuing back-to-back; latency is measured from each
  // request's *scheduled* arrival (counts client-side lag — no
  // coordinated omission).
  ArrivalSchedule schedule;
};

struct Report {
  uint64_t ok = 0;
  uint64_t errors = 0;
  double duration_s = 0;
  double throughput_rps = 0;
  LatencyHistogram latency;
  // Responses observed per HTTP status code (0 = no response at all:
  // connect/send/read failure). Lets tests reconcile client-observed
  // 503/504 counts against the server's shed/kill counters.
  std::map<int, uint64_t> status_counts;
  // Body of Options::scrape_path (server-side stats JSON), if requested.
  std::string server_stats;

  double mean_ms() const { return latency.mean_ms(); }
  double p99_ms() const { return latency.p99_ms(); }
  uint64_t count(int status) const {
    auto it = status_counts.find(status);
    return it == status_counts.end() ? 0 : it->second;
  }
};

Result<Report> run_load(const Options& options);

// One blocking GET over a fresh connection (admin/stats scraping); returns
// the response body on any 2xx status.
Result<std::string> http_get(const std::string& host, uint16_t port,
                             const std::string& path,
                             int* status_out = nullptr);

// One blocking request/response over a fresh connection; for tests.
Result<std::vector<uint8_t>> single_request(const std::string& host,
                                            uint16_t port,
                                            const std::string& path,
                                            const std::vector<uint8_t>& body,
                                            int* status_out = nullptr);

}  // namespace sledge::loadgen
