#include "procfaas/procfaas.hpp"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>

#include "apps/native_host.hpp"
#include "common/log.hpp"
#include "http/http.hpp"

namespace sledge::procfaas {

namespace {

bool write_all(int fd, const uint8_t* data, size_t len) {
  size_t off = 0;
  while (off < len) {
    ssize_t n = ::write(fd, data + off, len - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

bool read_all(int fd, std::vector<uint8_t>* out) {
  uint8_t buf[65536];
  while (true) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n == 0) return true;
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    out->insert(out->end(), buf, buf + n);
  }
}

// Feeds `request` into `in_fd` while draining `out_fd`, avoiding the
// classic pipe deadlock on large payloads.
bool pump_pipes(int in_fd, int out_fd, const std::vector<uint8_t>& request,
                std::vector<uint8_t>* response) {
  size_t sent = 0;
  bool in_open = true;
  if (request.empty()) {
    ::close(in_fd);
    in_open = false;
  }
  while (true) {
    pollfd fds[2];
    int nfds = 0;
    int out_idx = -1, in_idx = -1;
    fds[nfds] = {out_fd, POLLIN, 0};
    out_idx = nfds++;
    if (in_open) {
      fds[nfds] = {in_fd, POLLOUT, 0};
      in_idx = nfds++;
    }
    int rc = ::poll(fds, static_cast<nfds_t>(nfds), 30000);
    if (rc <= 0) return false;

    if (in_idx >= 0 && (fds[in_idx].revents & (POLLOUT | POLLERR))) {
      ssize_t n = ::write(in_fd, request.data() + sent, request.size() - sent);
      if (n > 0) {
        sent += static_cast<size_t>(n);
        if (sent == request.size()) {
          ::close(in_fd);
          in_open = false;
        }
      } else if (n < 0 && errno != EINTR && errno != EAGAIN) {
        ::close(in_fd);
        in_open = false;  // child stopped reading; keep draining output
      }
    }
    if (fds[out_idx].revents & (POLLIN | POLLHUP)) {
      uint8_t buf[65536];
      ssize_t n = ::read(out_fd, buf, sizeof(buf));
      if (n == 0) {
        if (in_open) ::close(in_fd);
        return true;
      }
      if (n > 0) {
        response->insert(response->end(), buf, buf + n);
      } else if (errno != EINTR && errno != EAGAIN) {
        return false;
      }
    }
  }
}

}  // namespace

bool spawn_function_process(const std::string& binary_path,
                            const std::vector<uint8_t>& request,
                            std::vector<uint8_t>* response) {
  // O_CLOEXEC is essential: concurrently forked siblings must not inherit
  // this invocation's pipe ends, or the child never sees stdin EOF while
  // any overlapping invocation is alive (a livelock under sustained load).
  int in_pipe[2], out_pipe[2];
  if (::pipe2(in_pipe, O_CLOEXEC) < 0) return false;
  if (::pipe2(out_pipe, O_CLOEXEC) < 0) {
    ::close(in_pipe[0]);
    ::close(in_pipe[1]);
    return false;
  }

  pid_t pid = ::fork();
  if (pid < 0) {
    for (int fd : {in_pipe[0], in_pipe[1], out_pipe[0], out_pipe[1]}) {
      ::close(fd);
    }
    return false;
  }
  if (pid == 0) {
    ::dup2(in_pipe[0], 0);   // dup2 clears O_CLOEXEC on the new fds
    ::dup2(out_pipe[1], 1);
    ::execl(binary_path.c_str(), binary_path.c_str(),
            static_cast<char*>(nullptr));
    _exit(127);
  }

  ::close(in_pipe[0]);
  ::close(out_pipe[1]);
  bool ok = pump_pipes(in_pipe[1], out_pipe[0], request, response);
  ::close(out_pipe[0]);

  int status = 0;
  while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
  }
  return ok && WIFEXITED(status) && WEXITSTATUS(status) == 0;
}

ProcFaas::ProcFaas(ProcFaasConfig config) : config_(config) {
  if (config_.max_workers < 1) config_.max_workers = 1;
}

ProcFaas::~ProcFaas() { stop(); }

Status ProcFaas::register_function(const std::string& name,
                                   const std::string& binary_path) {
  if (::access(binary_path.c_str(), X_OK) != 0) {
    return Status::error("function binary not executable: " + binary_path);
  }
  functions_[name] = Function{binary_path, nullptr};
  return Status::ok();
}

Status ProcFaas::register_function(const std::string& name,
                                   InProcessHandler handler) {
  functions_[name] = Function{"", std::move(handler)};
  return Status::ok();
}

Status ProcFaas::start() {
  if (running_.load()) return Status::error("already running");
  ::signal(SIGPIPE, SIG_IGN);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return Status::error("socket() failed");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(config_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return Status::error("bind failed");
  }
  if (::listen(listen_fd_, 1024) < 0) return Status::error("listen failed");
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  bound_port_ = ntohs(addr.sin_port);

  running_.store(true);
  acceptor_ = std::thread([this] { accept_main(); });
  return Status::ok();
}

void ProcFaas::stop() {
  if (!running_.exchange(false)) return;
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  listen_fd_ = -1;
  {
    // Nudge idle keep-alive connections so their threads exit.
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (int fd : open_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  if (acceptor_.joinable()) acceptor_.join();
  for (std::thread& t : conn_threads_) {
    if (t.joinable()) t.join();
  }
  conn_threads_.clear();
}

void ProcFaas::invocation_acquire() {
  std::unique_lock<std::mutex> lock(sem_mu_);
  sem_cv_.wait(lock, [this] {
    return invocations_in_flight_ < config_.max_workers || !running_.load();
  });
  ++invocations_in_flight_;
}

void ProcFaas::invocation_release() {
  {
    std::lock_guard<std::mutex> lock(sem_mu_);
    --invocations_in_flight_;
  }
  sem_cv_.notify_one();
}

ProcFaas::Totals ProcFaas::totals() const {
  return Totals{requests_.load(), failures_.load()};
}

void ProcFaas::accept_main() {
  // Thread-per-connection (kernel-scheduled), invocation concurrency capped
  // by the max_workers semaphore — the kernel-mediated machinery Sledge's
  // single-process design bypasses.
  while (running_.load()) {
    int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      open_fds_.push_back(fd);
    }
    conn_threads_.emplace_back([this, fd] {
      serve_connection(fd);
      std::lock_guard<std::mutex> lock(conn_mu_);
      open_fds_.erase(std::remove(open_fds_.begin(), open_fds_.end(), fd),
                      open_fds_.end());
    });
  }
}

void ProcFaas::serve_connection(int fd) {
  http::RequestParser parser;
  uint8_t buf[65536];
  while (running_.load()) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    size_t off = 0;
    bool closed = false;
    while (off < static_cast<size_t>(n)) {
      int used = parser.feed(buf + off, static_cast<size_t>(n) - off);
      if (used < 0) {
        closed = true;
        break;
      }
      off += static_cast<size_t>(used);
      if (!parser.done()) continue;

      http::Request& req = parser.request();
      std::string name = req.target.empty() || req.target[0] != '/'
                             ? req.target
                             : req.target.substr(1);
      bool keep_alive = req.keep_alive();
      requests_.fetch_add(1, std::memory_order_relaxed);

      std::string payload;
      auto it = functions_.find(name);
      if (it == functions_.end()) {
        payload = http::serialize_response(404, "Not Found", {}, keep_alive,
                                           "text/plain");
      } else {
        std::vector<uint8_t> response;
        invocation_acquire();
        bool ok = invoke(it->second, req.body, &response);
        invocation_release();
        if (!ok) failures_.fetch_add(1, std::memory_order_relaxed);
        payload = ok ? http::serialize_response(200, "OK", response,
                                                keep_alive)
                     : http::serialize_response(500, "Function Error", {},
                                                keep_alive, "text/plain");
      }
      if (!write_all(fd, reinterpret_cast<const uint8_t*>(payload.data()),
                     payload.size()) ||
          !keep_alive) {
        closed = true;
        break;
      }
      parser.reset();
    }
    if (closed) break;
  }
  ::close(fd);
}

bool ProcFaas::invoke(const Function& fn, const std::vector<uint8_t>& request,
                      std::vector<uint8_t>* response) {
  if (config_.mode == Mode::kForkExec || !fn.handler) {
    return spawn_function_process(fn.binary_path, request, response);
  }
  // kForkOnly: process-per-invocation without the exec image replacement.
  int out_pipe[2];
  if (::pipe(out_pipe) < 0) return false;
  pid_t pid = ::fork();
  if (pid < 0) {
    ::close(out_pipe[0]);
    ::close(out_pipe[1]);
    return false;
  }
  if (pid == 0) {
    ::close(out_pipe[0]);
    std::vector<uint8_t> out;
    fn.handler(request, &out);
    write_all(out_pipe[1], out.data(), out.size());
    ::close(out_pipe[1]);
    _exit(0);
  }
  ::close(out_pipe[1]);
  bool ok = read_all(out_pipe[0], response);
  ::close(out_pipe[0]);
  int status = 0;
  while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
  }
  return ok && WIFEXITED(status) && WEXITSTATUS(status) == 0;
}

}  // namespace sledge::procfaas
