// procfaas: the Nuclio-model baseline (paper Figure 1(c)).
//
// An HTTP server whose "serverless management" services each request by
// spawning an OS process for the function: fork + exec of a native function
// binary, body piped through stdin/stdout, waitpid for completion. A thread
// pool (maxWorkers, like Nuclio's function-processor setting) handles
// connections with ordinary blocking I/O and kernel scheduling — precisely
// the per-invocation process machinery whose cost Sledge's design removes.
//
// Connection handling is thread-per-connection (kernel-scheduled, like the
// Go runtime under Nuclio's HTTP listener); concurrent *invocations* are
// capped at max_workers by a semaphore, matching Nuclio's worker-pool
// semantics.
//
// Modes:
//   kForkExec — fork + execve the registered binary (the paper's cold path;
//               Table 3's fork+exec+wait row)
//   kForkOnly — fork and run an in-process handler in the child (models a
//               pre-loaded runtime that still pays process-per-invocation)
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/status.hpp"

namespace sledge::procfaas {

using InProcessHandler =
    std::function<void(const std::vector<uint8_t>& request,
                       std::vector<uint8_t>* response)>;

enum class Mode : uint8_t { kForkExec, kForkOnly };

struct ProcFaasConfig {
  uint16_t port = 0;       // 0 = auto
  int max_workers = 16;    // Nuclio's maxWorkers analog
  Mode mode = Mode::kForkExec;
};

class ProcFaas {
 public:
  explicit ProcFaas(ProcFaasConfig config);
  ~ProcFaas();

  ProcFaas(const ProcFaas&) = delete;
  ProcFaas& operator=(const ProcFaas&) = delete;

  // kForkExec functions: path to a stdin/stdout function binary.
  Status register_function(const std::string& name,
                           const std::string& binary_path);
  // kForkOnly functions: handler run inside the forked child.
  Status register_function(const std::string& name, InProcessHandler handler);

  Status start();
  void stop();
  uint16_t bound_port() const { return bound_port_; }

  struct Totals {
    uint64_t requests = 0;
    uint64_t failures = 0;
  };
  Totals totals() const;

 private:
  struct Function {
    std::string binary_path;
    InProcessHandler handler;
  };

  void accept_main();
  void serve_connection(int fd);
  void invocation_acquire();
  void invocation_release();
  // Runs one invocation; returns false on spawn/exec failure.
  bool invoke(const Function& fn, const std::vector<uint8_t>& request,
              std::vector<uint8_t>* response);

  ProcFaasConfig config_;
  std::map<std::string, Function> functions_;
  std::thread acceptor_;
  std::vector<std::thread> conn_threads_;
  std::mutex conn_mu_;
  std::vector<int> open_fds_;
  std::mutex sem_mu_;
  std::condition_variable sem_cv_;
  int invocations_in_flight_ = 0;
  std::atomic<bool> running_{false};
  int listen_fd_ = -1;
  uint16_t bound_port_ = 0;
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> failures_{0};
};

// One fork+exec+wait invocation of a function binary (exposed for the Table
// 3 churn benchmark).
bool spawn_function_process(const std::string& binary_path,
                            const std::vector<uint8_t>& request,
                            std::vector<uint8_t>* response);

}  // namespace sledge::procfaas
