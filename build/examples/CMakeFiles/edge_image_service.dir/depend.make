# Empty dependencies file for edge_image_service.
# This may be replaced when dependencies are built.
