file(REMOVE_RECURSE
  "CMakeFiles/edge_image_service.dir/edge_image_service.cpp.o"
  "CMakeFiles/edge_image_service.dir/edge_image_service.cpp.o.d"
  "edge_image_service"
  "edge_image_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edge_image_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
