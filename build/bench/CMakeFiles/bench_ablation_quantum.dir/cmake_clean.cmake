file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_quantum.dir/bench_ablation_quantum.cpp.o"
  "CMakeFiles/bench_ablation_quantum.dir/bench_ablation_quantum.cpp.o.d"
  "bench_ablation_quantum"
  "bench_ablation_quantum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_quantum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
