# Empty dependencies file for bench_ping_concurrency.
# This may be replaced when dependencies are built.
