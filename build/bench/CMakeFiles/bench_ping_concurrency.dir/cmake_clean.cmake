file(REMOVE_RECURSE
  "CMakeFiles/bench_ping_concurrency.dir/bench_ping_concurrency.cpp.o"
  "CMakeFiles/bench_ping_concurrency.dir/bench_ping_concurrency.cpp.o.d"
  "bench_ping_concurrency"
  "bench_ping_concurrency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ping_concurrency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
