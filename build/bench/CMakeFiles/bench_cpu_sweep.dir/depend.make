# Empty dependencies file for bench_cpu_sweep.
# This may be replaced when dependencies are built.
