file(REMOVE_RECURSE
  "CMakeFiles/bench_cpu_sweep.dir/bench_cpu_sweep.cpp.o"
  "CMakeFiles/bench_cpu_sweep.dir/bench_cpu_sweep.cpp.o.d"
  "bench_cpu_sweep"
  "bench_cpu_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cpu_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
