file(REMOVE_RECURSE
  "CMakeFiles/bench_payload.dir/bench_payload.cpp.o"
  "CMakeFiles/bench_payload.dir/bench_payload.cpp.o.d"
  "bench_payload"
  "bench_payload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_payload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
