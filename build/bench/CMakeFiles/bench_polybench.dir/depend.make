# Empty dependencies file for bench_polybench.
# This may be replaced when dependencies are built.
