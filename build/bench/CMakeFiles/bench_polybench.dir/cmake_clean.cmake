file(REMOVE_RECURSE
  "CMakeFiles/bench_polybench.dir/bench_polybench.cpp.o"
  "CMakeFiles/bench_polybench.dir/bench_polybench.cpp.o.d"
  "bench_polybench"
  "bench_polybench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_polybench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
