file(REMOVE_RECURSE
  "CMakeFiles/bench_exec_overhead.dir/bench_exec_overhead.cpp.o"
  "CMakeFiles/bench_exec_overhead.dir/bench_exec_overhead.cpp.o.d"
  "bench_exec_overhead"
  "bench_exec_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exec_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
