file(REMOVE_RECURSE
  "CMakeFiles/sledge_procfaas.dir/procfaas.cpp.o"
  "CMakeFiles/sledge_procfaas.dir/procfaas.cpp.o.d"
  "libsledge_procfaas.a"
  "libsledge_procfaas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sledge_procfaas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
