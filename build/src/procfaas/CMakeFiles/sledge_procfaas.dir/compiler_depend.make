# Empty compiler generated dependencies file for sledge_procfaas.
# This may be replaced when dependencies are built.
