file(REMOVE_RECURSE
  "libsledge_procfaas.a"
)
