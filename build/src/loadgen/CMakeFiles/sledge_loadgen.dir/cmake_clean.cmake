file(REMOVE_RECURSE
  "CMakeFiles/sledge_loadgen.dir/loadgen.cpp.o"
  "CMakeFiles/sledge_loadgen.dir/loadgen.cpp.o.d"
  "libsledge_loadgen.a"
  "libsledge_loadgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sledge_loadgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
