file(REMOVE_RECURSE
  "libsledge_loadgen.a"
)
