# Empty dependencies file for sledge_loadgen.
# This may be replaced when dependencies are built.
