# Empty compiler generated dependencies file for sledge_runtime.
# This may be replaced when dependencies are built.
