file(REMOVE_RECURSE
  "libsledge_runtime.a"
)
