file(REMOVE_RECURSE
  "CMakeFiles/sledge_runtime.dir/listener.cpp.o"
  "CMakeFiles/sledge_runtime.dir/listener.cpp.o.d"
  "CMakeFiles/sledge_runtime.dir/runtime.cpp.o"
  "CMakeFiles/sledge_runtime.dir/runtime.cpp.o.d"
  "CMakeFiles/sledge_runtime.dir/sandbox.cpp.o"
  "CMakeFiles/sledge_runtime.dir/sandbox.cpp.o.d"
  "CMakeFiles/sledge_runtime.dir/worker.cpp.o"
  "CMakeFiles/sledge_runtime.dir/worker.cpp.o.d"
  "libsledge_runtime.a"
  "libsledge_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sledge_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
