
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sledge/listener.cpp" "src/sledge/CMakeFiles/sledge_runtime.dir/listener.cpp.o" "gcc" "src/sledge/CMakeFiles/sledge_runtime.dir/listener.cpp.o.d"
  "/root/repo/src/sledge/runtime.cpp" "src/sledge/CMakeFiles/sledge_runtime.dir/runtime.cpp.o" "gcc" "src/sledge/CMakeFiles/sledge_runtime.dir/runtime.cpp.o.d"
  "/root/repo/src/sledge/sandbox.cpp" "src/sledge/CMakeFiles/sledge_runtime.dir/sandbox.cpp.o" "gcc" "src/sledge/CMakeFiles/sledge_runtime.dir/sandbox.cpp.o.d"
  "/root/repo/src/sledge/worker.cpp" "src/sledge/CMakeFiles/sledge_runtime.dir/worker.cpp.o" "gcc" "src/sledge/CMakeFiles/sledge_runtime.dir/worker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/engine/CMakeFiles/sledge_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/sledge_http.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sledge_common.dir/DependInfo.cmake"
  "/root/repo/build/src/wasm/CMakeFiles/sledge_wasm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
