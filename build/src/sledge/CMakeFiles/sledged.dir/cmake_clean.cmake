file(REMOVE_RECURSE
  "CMakeFiles/sledged.dir/sledged_main.cpp.o"
  "CMakeFiles/sledged.dir/sledged_main.cpp.o.d"
  "sledged"
  "sledged.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sledged.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
