# Empty compiler generated dependencies file for sledged.
# This may be replaced when dependencies are built.
