file(REMOVE_RECURSE
  "CMakeFiles/sledge_common.dir/file_util.cpp.o"
  "CMakeFiles/sledge_common.dir/file_util.cpp.o.d"
  "CMakeFiles/sledge_common.dir/json.cpp.o"
  "CMakeFiles/sledge_common.dir/json.cpp.o.d"
  "CMakeFiles/sledge_common.dir/log.cpp.o"
  "CMakeFiles/sledge_common.dir/log.cpp.o.d"
  "libsledge_common.a"
  "libsledge_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sledge_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
