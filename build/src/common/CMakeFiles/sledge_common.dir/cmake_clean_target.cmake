file(REMOVE_RECURSE
  "libsledge_common.a"
)
