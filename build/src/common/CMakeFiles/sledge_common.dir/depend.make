# Empty dependencies file for sledge_common.
# This may be replaced when dependencies are built.
