file(REMOVE_RECURSE
  "libsledge_minicc.a"
)
