
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/minicc/builtins.cpp" "src/minicc/CMakeFiles/sledge_minicc.dir/builtins.cpp.o" "gcc" "src/minicc/CMakeFiles/sledge_minicc.dir/builtins.cpp.o.d"
  "/root/repo/src/minicc/codegen_c.cpp" "src/minicc/CMakeFiles/sledge_minicc.dir/codegen_c.cpp.o" "gcc" "src/minicc/CMakeFiles/sledge_minicc.dir/codegen_c.cpp.o.d"
  "/root/repo/src/minicc/codegen_wasm.cpp" "src/minicc/CMakeFiles/sledge_minicc.dir/codegen_wasm.cpp.o" "gcc" "src/minicc/CMakeFiles/sledge_minicc.dir/codegen_wasm.cpp.o.d"
  "/root/repo/src/minicc/lexer.cpp" "src/minicc/CMakeFiles/sledge_minicc.dir/lexer.cpp.o" "gcc" "src/minicc/CMakeFiles/sledge_minicc.dir/lexer.cpp.o.d"
  "/root/repo/src/minicc/minicc.cpp" "src/minicc/CMakeFiles/sledge_minicc.dir/minicc.cpp.o" "gcc" "src/minicc/CMakeFiles/sledge_minicc.dir/minicc.cpp.o.d"
  "/root/repo/src/minicc/parser.cpp" "src/minicc/CMakeFiles/sledge_minicc.dir/parser.cpp.o" "gcc" "src/minicc/CMakeFiles/sledge_minicc.dir/parser.cpp.o.d"
  "/root/repo/src/minicc/sema.cpp" "src/minicc/CMakeFiles/sledge_minicc.dir/sema.cpp.o" "gcc" "src/minicc/CMakeFiles/sledge_minicc.dir/sema.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/wasm/CMakeFiles/sledge_wasm.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sledge_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
