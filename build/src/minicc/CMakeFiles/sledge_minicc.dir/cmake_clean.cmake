file(REMOVE_RECURSE
  "CMakeFiles/sledge_minicc.dir/builtins.cpp.o"
  "CMakeFiles/sledge_minicc.dir/builtins.cpp.o.d"
  "CMakeFiles/sledge_minicc.dir/codegen_c.cpp.o"
  "CMakeFiles/sledge_minicc.dir/codegen_c.cpp.o.d"
  "CMakeFiles/sledge_minicc.dir/codegen_wasm.cpp.o"
  "CMakeFiles/sledge_minicc.dir/codegen_wasm.cpp.o.d"
  "CMakeFiles/sledge_minicc.dir/lexer.cpp.o"
  "CMakeFiles/sledge_minicc.dir/lexer.cpp.o.d"
  "CMakeFiles/sledge_minicc.dir/minicc.cpp.o"
  "CMakeFiles/sledge_minicc.dir/minicc.cpp.o.d"
  "CMakeFiles/sledge_minicc.dir/parser.cpp.o"
  "CMakeFiles/sledge_minicc.dir/parser.cpp.o.d"
  "CMakeFiles/sledge_minicc.dir/sema.cpp.o"
  "CMakeFiles/sledge_minicc.dir/sema.cpp.o.d"
  "libsledge_minicc.a"
  "libsledge_minicc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sledge_minicc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
