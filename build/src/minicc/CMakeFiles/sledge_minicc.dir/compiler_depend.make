# Empty compiler generated dependencies file for sledge_minicc.
# This may be replaced when dependencies are built.
