# Empty compiler generated dependencies file for minicc.
# This may be replaced when dependencies are built.
