file(REMOVE_RECURSE
  "libsledge_engine.a"
)
