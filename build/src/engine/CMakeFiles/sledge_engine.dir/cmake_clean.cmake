file(REMOVE_RECURSE
  "CMakeFiles/sledge_engine.dir/aot.cpp.o"
  "CMakeFiles/sledge_engine.dir/aot.cpp.o.d"
  "CMakeFiles/sledge_engine.dir/cc_driver.cpp.o"
  "CMakeFiles/sledge_engine.dir/cc_driver.cpp.o.d"
  "CMakeFiles/sledge_engine.dir/engine.cpp.o"
  "CMakeFiles/sledge_engine.dir/engine.cpp.o.d"
  "CMakeFiles/sledge_engine.dir/host.cpp.o"
  "CMakeFiles/sledge_engine.dir/host.cpp.o.d"
  "CMakeFiles/sledge_engine.dir/instance.cpp.o"
  "CMakeFiles/sledge_engine.dir/instance.cpp.o.d"
  "CMakeFiles/sledge_engine.dir/interp.cpp.o"
  "CMakeFiles/sledge_engine.dir/interp.cpp.o.d"
  "CMakeFiles/sledge_engine.dir/interp_fast.cpp.o"
  "CMakeFiles/sledge_engine.dir/interp_fast.cpp.o.d"
  "CMakeFiles/sledge_engine.dir/memory.cpp.o"
  "CMakeFiles/sledge_engine.dir/memory.cpp.o.d"
  "CMakeFiles/sledge_engine.dir/predecode.cpp.o"
  "CMakeFiles/sledge_engine.dir/predecode.cpp.o.d"
  "CMakeFiles/sledge_engine.dir/trap.cpp.o"
  "CMakeFiles/sledge_engine.dir/trap.cpp.o.d"
  "CMakeFiles/sledge_engine.dir/wasm2c.cpp.o"
  "CMakeFiles/sledge_engine.dir/wasm2c.cpp.o.d"
  "libsledge_engine.a"
  "libsledge_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sledge_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
