
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/aot.cpp" "src/engine/CMakeFiles/sledge_engine.dir/aot.cpp.o" "gcc" "src/engine/CMakeFiles/sledge_engine.dir/aot.cpp.o.d"
  "/root/repo/src/engine/cc_driver.cpp" "src/engine/CMakeFiles/sledge_engine.dir/cc_driver.cpp.o" "gcc" "src/engine/CMakeFiles/sledge_engine.dir/cc_driver.cpp.o.d"
  "/root/repo/src/engine/engine.cpp" "src/engine/CMakeFiles/sledge_engine.dir/engine.cpp.o" "gcc" "src/engine/CMakeFiles/sledge_engine.dir/engine.cpp.o.d"
  "/root/repo/src/engine/host.cpp" "src/engine/CMakeFiles/sledge_engine.dir/host.cpp.o" "gcc" "src/engine/CMakeFiles/sledge_engine.dir/host.cpp.o.d"
  "/root/repo/src/engine/instance.cpp" "src/engine/CMakeFiles/sledge_engine.dir/instance.cpp.o" "gcc" "src/engine/CMakeFiles/sledge_engine.dir/instance.cpp.o.d"
  "/root/repo/src/engine/interp.cpp" "src/engine/CMakeFiles/sledge_engine.dir/interp.cpp.o" "gcc" "src/engine/CMakeFiles/sledge_engine.dir/interp.cpp.o.d"
  "/root/repo/src/engine/interp_fast.cpp" "src/engine/CMakeFiles/sledge_engine.dir/interp_fast.cpp.o" "gcc" "src/engine/CMakeFiles/sledge_engine.dir/interp_fast.cpp.o.d"
  "/root/repo/src/engine/memory.cpp" "src/engine/CMakeFiles/sledge_engine.dir/memory.cpp.o" "gcc" "src/engine/CMakeFiles/sledge_engine.dir/memory.cpp.o.d"
  "/root/repo/src/engine/predecode.cpp" "src/engine/CMakeFiles/sledge_engine.dir/predecode.cpp.o" "gcc" "src/engine/CMakeFiles/sledge_engine.dir/predecode.cpp.o.d"
  "/root/repo/src/engine/trap.cpp" "src/engine/CMakeFiles/sledge_engine.dir/trap.cpp.o" "gcc" "src/engine/CMakeFiles/sledge_engine.dir/trap.cpp.o.d"
  "/root/repo/src/engine/wasm2c.cpp" "src/engine/CMakeFiles/sledge_engine.dir/wasm2c.cpp.o" "gcc" "src/engine/CMakeFiles/sledge_engine.dir/wasm2c.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/wasm/CMakeFiles/sledge_wasm.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sledge_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
