# Empty compiler generated dependencies file for sledge_engine.
# This may be replaced when dependencies are built.
