# Empty compiler generated dependencies file for sledge_wasm.
# This may be replaced when dependencies are built.
