file(REMOVE_RECURSE
  "CMakeFiles/sledge_wasm.dir/builder.cpp.o"
  "CMakeFiles/sledge_wasm.dir/builder.cpp.o.d"
  "CMakeFiles/sledge_wasm.dir/decoder.cpp.o"
  "CMakeFiles/sledge_wasm.dir/decoder.cpp.o.d"
  "CMakeFiles/sledge_wasm.dir/disasm.cpp.o"
  "CMakeFiles/sledge_wasm.dir/disasm.cpp.o.d"
  "CMakeFiles/sledge_wasm.dir/types.cpp.o"
  "CMakeFiles/sledge_wasm.dir/types.cpp.o.d"
  "CMakeFiles/sledge_wasm.dir/validator.cpp.o"
  "CMakeFiles/sledge_wasm.dir/validator.cpp.o.d"
  "libsledge_wasm.a"
  "libsledge_wasm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sledge_wasm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
