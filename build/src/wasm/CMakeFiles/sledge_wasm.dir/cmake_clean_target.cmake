file(REMOVE_RECURSE
  "libsledge_wasm.a"
)
