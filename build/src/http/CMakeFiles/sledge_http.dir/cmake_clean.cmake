file(REMOVE_RECURSE
  "CMakeFiles/sledge_http.dir/http.cpp.o"
  "CMakeFiles/sledge_http.dir/http.cpp.o.d"
  "libsledge_http.a"
  "libsledge_http.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sledge_http.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
