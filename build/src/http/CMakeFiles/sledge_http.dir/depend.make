# Empty dependencies file for sledge_http.
# This may be replaced when dependencies are built.
