file(REMOVE_RECURSE
  "libsledge_http.a"
)
