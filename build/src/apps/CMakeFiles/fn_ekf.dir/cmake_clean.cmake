file(REMOVE_RECURSE
  "CMakeFiles/fn_ekf.dir/ekf_native.c.o"
  "CMakeFiles/fn_ekf.dir/ekf_native.c.o.d"
  "CMakeFiles/fn_ekf.dir/fnrunner_main.cpp.o"
  "CMakeFiles/fn_ekf.dir/fnrunner_main.cpp.o.d"
  "ekf_native.c"
  "fn_ekf"
  "fn_ekf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang C CXX)
  include(CMakeFiles/fn_ekf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
