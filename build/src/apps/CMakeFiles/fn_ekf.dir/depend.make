# Empty dependencies file for fn_ekf.
# This may be replaced when dependencies are built.
