# Empty dependencies file for fn_lpd.
# This may be replaced when dependencies are built.
