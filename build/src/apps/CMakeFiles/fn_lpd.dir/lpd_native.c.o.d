src/apps/CMakeFiles/fn_lpd.dir/lpd_native.c.o: \
 /root/repo/build/src/apps/lpd_native.c /usr/include/stdc-predef.h \
 /usr/lib/gcc/x86_64-linux-gnu/12/include/stdint.h /usr/include/stdint.h \
 /usr/include/x86_64-linux-gnu/bits/libc-header-start.h \
 /usr/include/features.h /usr/include/features-time64.h \
 /usr/include/x86_64-linux-gnu/bits/wordsize.h \
 /usr/include/x86_64-linux-gnu/bits/timesize.h \
 /usr/include/x86_64-linux-gnu/sys/cdefs.h \
 /usr/include/x86_64-linux-gnu/bits/long-double.h \
 /usr/include/x86_64-linux-gnu/gnu/stubs.h \
 /usr/include/x86_64-linux-gnu/gnu/stubs-64.h \
 /usr/include/x86_64-linux-gnu/bits/types.h \
 /usr/include/x86_64-linux-gnu/bits/typesizes.h \
 /usr/include/x86_64-linux-gnu/bits/time64.h \
 /usr/include/x86_64-linux-gnu/bits/wchar.h \
 /usr/include/x86_64-linux-gnu/bits/stdint-intn.h \
 /usr/include/x86_64-linux-gnu/bits/stdint-uintn.h /usr/include/math.h \
 /usr/include/x86_64-linux-gnu/bits/math-vector.h \
 /usr/include/x86_64-linux-gnu/bits/libm-simd-decl-stubs.h \
 /usr/include/x86_64-linux-gnu/bits/floatn.h \
 /usr/include/x86_64-linux-gnu/bits/floatn-common.h \
 /usr/include/x86_64-linux-gnu/bits/flt-eval-method.h \
 /usr/include/x86_64-linux-gnu/bits/fp-logb.h \
 /usr/include/x86_64-linux-gnu/bits/fp-fast.h \
 /usr/include/x86_64-linux-gnu/bits/mathcalls-helper-functions.h \
 /usr/include/x86_64-linux-gnu/bits/mathcalls.h
