file(REMOVE_RECURSE
  "CMakeFiles/fn_lpd.dir/fnrunner_main.cpp.o"
  "CMakeFiles/fn_lpd.dir/fnrunner_main.cpp.o.d"
  "CMakeFiles/fn_lpd.dir/lpd_native.c.o"
  "CMakeFiles/fn_lpd.dir/lpd_native.c.o.d"
  "fn_lpd"
  "fn_lpd.pdb"
  "lpd_native.c"
)

# Per-language clean rules from dependency scanning.
foreach(lang C CXX)
  include(CMakeFiles/fn_lpd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
