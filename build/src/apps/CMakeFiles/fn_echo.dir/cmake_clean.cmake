file(REMOVE_RECURSE
  "CMakeFiles/fn_echo.dir/echo_native.c.o"
  "CMakeFiles/fn_echo.dir/echo_native.c.o.d"
  "CMakeFiles/fn_echo.dir/fnrunner_main.cpp.o"
  "CMakeFiles/fn_echo.dir/fnrunner_main.cpp.o.d"
  "echo_native.c"
  "fn_echo"
  "fn_echo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang C CXX)
  include(CMakeFiles/fn_echo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
