# Empty compiler generated dependencies file for fn_echo.
# This may be replaced when dependencies are built.
