file(REMOVE_RECURSE
  "CMakeFiles/fn_resize.dir/fnrunner_main.cpp.o"
  "CMakeFiles/fn_resize.dir/fnrunner_main.cpp.o.d"
  "CMakeFiles/fn_resize.dir/resize_native.c.o"
  "CMakeFiles/fn_resize.dir/resize_native.c.o.d"
  "fn_resize"
  "fn_resize.pdb"
  "resize_native.c"
)

# Per-language clean rules from dependency scanning.
foreach(lang C CXX)
  include(CMakeFiles/fn_resize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
