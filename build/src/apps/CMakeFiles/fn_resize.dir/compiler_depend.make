# Empty compiler generated dependencies file for fn_resize.
# This may be replaced when dependencies are built.
