file(REMOVE_RECURSE
  "libsledge_apps.a"
)
