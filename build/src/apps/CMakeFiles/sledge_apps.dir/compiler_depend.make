# Empty compiler generated dependencies file for sledge_apps.
# This may be replaced when dependencies are built.
