file(REMOVE_RECURSE
  "CMakeFiles/sledge_apps.dir/native_host.cpp.o"
  "CMakeFiles/sledge_apps.dir/native_host.cpp.o.d"
  "CMakeFiles/sledge_apps.dir/workloads.cpp.o"
  "CMakeFiles/sledge_apps.dir/workloads.cpp.o.d"
  "libsledge_apps.a"
  "libsledge_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sledge_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
