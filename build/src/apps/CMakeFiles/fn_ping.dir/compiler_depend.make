# Empty compiler generated dependencies file for fn_ping.
# This may be replaced when dependencies are built.
