file(REMOVE_RECURSE
  "CMakeFiles/fn_ping.dir/fnrunner_main.cpp.o"
  "CMakeFiles/fn_ping.dir/fnrunner_main.cpp.o.d"
  "CMakeFiles/fn_ping.dir/ping_native.c.o"
  "CMakeFiles/fn_ping.dir/ping_native.c.o.d"
  "fn_ping"
  "fn_ping.pdb"
  "ping_native.c"
)

# Per-language clean rules from dependency scanning.
foreach(lang C CXX)
  include(CMakeFiles/fn_ping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
