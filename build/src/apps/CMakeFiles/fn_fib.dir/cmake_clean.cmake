file(REMOVE_RECURSE
  "CMakeFiles/fn_fib.dir/fib_native.c.o"
  "CMakeFiles/fn_fib.dir/fib_native.c.o.d"
  "CMakeFiles/fn_fib.dir/fnrunner_main.cpp.o"
  "CMakeFiles/fn_fib.dir/fnrunner_main.cpp.o.d"
  "fib_native.c"
  "fn_fib"
  "fn_fib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang C CXX)
  include(CMakeFiles/fn_fib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
