# Empty dependencies file for fn_fib.
# This may be replaced when dependencies are built.
