file(REMOVE_RECURSE
  "CMakeFiles/fn_gocr.dir/fnrunner_main.cpp.o"
  "CMakeFiles/fn_gocr.dir/fnrunner_main.cpp.o.d"
  "CMakeFiles/fn_gocr.dir/gocr_native.c.o"
  "CMakeFiles/fn_gocr.dir/gocr_native.c.o.d"
  "fn_gocr"
  "fn_gocr.pdb"
  "gocr_native.c"
)

# Per-language clean rules from dependency scanning.
foreach(lang C CXX)
  include(CMakeFiles/fn_gocr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
