
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/build/src/apps/gocr_native.c" "src/apps/CMakeFiles/fn_gocr.dir/gocr_native.c.o" "gcc" "src/apps/CMakeFiles/fn_gocr.dir/gocr_native.c.o.d"
  "/root/repo/src/apps/fnrunner_main.cpp" "src/apps/CMakeFiles/fn_gocr.dir/fnrunner_main.cpp.o" "gcc" "src/apps/CMakeFiles/fn_gocr.dir/fnrunner_main.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/sledge_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/minicc/CMakeFiles/sledge_minicc.dir/DependInfo.cmake"
  "/root/repo/build/src/wasm/CMakeFiles/sledge_wasm.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sledge_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
