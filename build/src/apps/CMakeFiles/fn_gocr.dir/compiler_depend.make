# Empty compiler generated dependencies file for fn_gocr.
# This may be replaced when dependencies are built.
