file(REMOVE_RECURSE
  "CMakeFiles/fn_cifar10.dir/cifar10_native.c.o"
  "CMakeFiles/fn_cifar10.dir/cifar10_native.c.o.d"
  "CMakeFiles/fn_cifar10.dir/fnrunner_main.cpp.o"
  "CMakeFiles/fn_cifar10.dir/fnrunner_main.cpp.o.d"
  "cifar10_native.c"
  "fn_cifar10"
  "fn_cifar10.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang C CXX)
  include(CMakeFiles/fn_cifar10.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
