# Empty compiler generated dependencies file for fn_cifar10.
# This may be replaced when dependencies are built.
