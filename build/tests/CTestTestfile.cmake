# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/wasm_core_test[1]_include.cmake")
include("/root/repo/build/tests/wasm_validator_test[1]_include.cmake")
include("/root/repo/build/tests/engine_exec_test[1]_include.cmake")
include("/root/repo/build/tests/engine_differential_test[1]_include.cmake")
include("/root/repo/build/tests/engine_memory_test[1]_include.cmake")
include("/root/repo/build/tests/minicc_test[1]_include.cmake")
include("/root/repo/build/tests/http_test[1]_include.cmake")
include("/root/repo/build/tests/deque_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/deadline_test[1]_include.cmake")
include("/root/repo/build/tests/procfaas_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/polybench_test[1]_include.cmake")
include("/root/repo/build/tests/loadgen_test[1]_include.cmake")
include("/root/repo/build/tests/wasm_disasm_test[1]_include.cmake")
