# Empty dependencies file for engine_memory_test.
# This may be replaced when dependencies are built.
