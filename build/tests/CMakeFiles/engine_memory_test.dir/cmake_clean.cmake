file(REMOVE_RECURSE
  "CMakeFiles/engine_memory_test.dir/engine_memory_test.cpp.o"
  "CMakeFiles/engine_memory_test.dir/engine_memory_test.cpp.o.d"
  "engine_memory_test"
  "engine_memory_test.pdb"
  "engine_memory_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_memory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
