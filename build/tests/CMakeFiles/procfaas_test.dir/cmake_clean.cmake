file(REMOVE_RECURSE
  "CMakeFiles/procfaas_test.dir/procfaas_test.cpp.o"
  "CMakeFiles/procfaas_test.dir/procfaas_test.cpp.o.d"
  "procfaas_test"
  "procfaas_test.pdb"
  "procfaas_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/procfaas_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
