# Empty compiler generated dependencies file for procfaas_test.
# This may be replaced when dependencies are built.
