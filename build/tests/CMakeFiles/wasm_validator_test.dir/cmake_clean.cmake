file(REMOVE_RECURSE
  "CMakeFiles/wasm_validator_test.dir/wasm_validator_test.cpp.o"
  "CMakeFiles/wasm_validator_test.dir/wasm_validator_test.cpp.o.d"
  "wasm_validator_test"
  "wasm_validator_test.pdb"
  "wasm_validator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wasm_validator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
