# Empty dependencies file for wasm_validator_test.
# This may be replaced when dependencies are built.
