file(REMOVE_RECURSE
  "CMakeFiles/wasm_disasm_test.dir/wasm_disasm_test.cpp.o"
  "CMakeFiles/wasm_disasm_test.dir/wasm_disasm_test.cpp.o.d"
  "wasm_disasm_test"
  "wasm_disasm_test.pdb"
  "wasm_disasm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wasm_disasm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
