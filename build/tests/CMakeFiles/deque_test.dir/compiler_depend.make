# Empty compiler generated dependencies file for deque_test.
# This may be replaced when dependencies are built.
