# Empty dependencies file for wasm_core_test.
# This may be replaced when dependencies are built.
