file(REMOVE_RECURSE
  "CMakeFiles/wasm_core_test.dir/wasm_core_test.cpp.o"
  "CMakeFiles/wasm_core_test.dir/wasm_core_test.cpp.o.d"
  "wasm_core_test"
  "wasm_core_test.pdb"
  "wasm_core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wasm_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
