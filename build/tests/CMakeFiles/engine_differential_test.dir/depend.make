# Empty dependencies file for engine_differential_test.
# This may be replaced when dependencies are built.
