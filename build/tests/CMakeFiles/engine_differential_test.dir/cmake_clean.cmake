file(REMOVE_RECURSE
  "CMakeFiles/engine_differential_test.dir/engine_differential_test.cpp.o"
  "CMakeFiles/engine_differential_test.dir/engine_differential_test.cpp.o.d"
  "engine_differential_test"
  "engine_differential_test.pdb"
  "engine_differential_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_differential_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
