
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/deadline_test.cpp" "tests/CMakeFiles/deadline_test.dir/deadline_test.cpp.o" "gcc" "tests/CMakeFiles/deadline_test.dir/deadline_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/sledge_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/sledge/CMakeFiles/sledge_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/procfaas/CMakeFiles/sledge_procfaas.dir/DependInfo.cmake"
  "/root/repo/build/src/loadgen/CMakeFiles/sledge_loadgen.dir/DependInfo.cmake"
  "/root/repo/build/src/minicc/CMakeFiles/sledge_minicc.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/sledge_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/sledge_http.dir/DependInfo.cmake"
  "/root/repo/build/src/wasm/CMakeFiles/sledge_wasm.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sledge_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
